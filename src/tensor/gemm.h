// Matrix-multiply kernels, thread-parallel over output rows.
//
// Three explicit variants cover every case the NN forward/backward passes
// need, avoiding a general (and slower) stride-parameterized kernel:
//   GemmNN:  C = A   * B      (forward:  X * W)
//   GemmNT:  C = A   * B^T    (backward: dY * W^T, and embedding-reuse logits)
//   GemmTN:  C = A^T * B      (backward: X^T * dY for weight gradients)
// All support optional accumulation into C (beta = 1).
//
// GemmNN and GemmNT take a KernelKind: kScalar runs the original reference
// loops, kSimd (and kSimdInt8, which only differs at the layer level — see
// quant.h) runs the cache-blocked SIMD kernels in gemm_simd.cc behind
// runtime CPU dispatch (kernel.h). GemmTN is training-only and stays scalar.
//
// Determinism: work is partitioned by output row and each row's reduction
// order is fixed, so for a FIXED kernel the result is bit-identical across
// thread counts and row splits. Different kernels round differently.
#pragma once

#include "tensor/kernel.h"
#include "tensor/matrix.h"

namespace naru {

/// Shape hint for GemmNN's A operand. kOneHot keeps the zero-skip fast path
/// (profitable only when most of A is zeros, i.e. the one-hot-encoded input
/// layer); kDense runs branch-free. The hint never changes results: skipped
/// terms are exact zero contributions, so both paths are bit-identical for
/// finite weights.
enum class InputHint : uint8_t {
  kDense = 0,
  kOneHot = 1,
};

/// C(MxN) = A(MxK) * B(KxN) [+ C if accumulate].
void GemmNN(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false, KernelKind kernel = KernelKind::kScalar,
            InputHint hint = InputHint::kDense);

/// C(MxN) = A(MxK) * B(NxK)^T [+ C if accumulate].
void GemmNT(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false, KernelKind kernel = KernelKind::kScalar);

/// C(KxN) = A(MxK)^T * B(MxN) [+ C if accumulate]. Training-only; always
/// scalar, and keeps the zero-skip on A (the sparse one-hot input actually
/// pays there).
void GemmTN(const Matrix& a, const Matrix& b, Matrix* c,
            bool accumulate = false);

/// Adds a length-N bias row to every row of C(MxN).
void AddBiasRows(const Matrix& bias, Matrix* c);

/// bias_grad(1xN) += column sums of dY(MxN).
void AccumulateBiasGrad(const Matrix& dy, Matrix* bias_grad);

}  // namespace naru
