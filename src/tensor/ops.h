// Elementwise and row-wise tensor kernels used by layers and the sampler.
#pragma once

#include <cstdint>

#include "tensor/matrix.h"

namespace naru {

/// out = relu(in); shapes must match (out may alias in).
void ReluForward(const Matrix& in, Matrix* out);

/// dx = dy * 1[x > 0]; `x` is the pre-activation input (dx may alias dy).
void ReluBackward(const Matrix& x, const Matrix& dy, Matrix* dx);

/// Softmax over each row of `logits` into `probs` (may alias).
/// Numerically stabilized by per-row max subtraction.
void SoftmaxRows(const Matrix& logits, Matrix* probs);

/// Softmax over columns [begin, end) of each row, writing into the
/// corresponding columns of `probs` (other columns untouched).
void SoftmaxRowsSlice(const Matrix& logits, size_t begin, size_t end,
                      Matrix* probs);

/// log(sum(exp(row[begin:end]))) with max-subtraction, for one row.
double LogSumExpSlice(const float* row, size_t begin, size_t end);

/// c += a * scale (shapes must match).
void Axpy(const Matrix& a, float scale, Matrix* c);

/// Returns the global L2 norm sqrt(sum of squares) of the matrix.
double L2Norm(const Matrix& m);

}  // namespace naru
