// SIMD inner kernels for the tensor layer, behind runtime dispatch.
//
// Layout of this file: a portable blocked implementation of each kernel
// (always compiled, the dispatch target on machines without AVX2/NEON),
// an AVX2+FMA implementation using per-function target attributes (so the
// rest of the binary keeps the baseline ISA and the probe in kernel.h
// decides at runtime), a NEON implementation compiled only on ARM, and the
// dispatch shims declared in gemm_kernels.h.
//
// Packing note: B panels are consumed in row-major order with a padded
// 64-byte leading dimension (matrix.h), which is already the layout the
// broadcast-A/FMA inner loops want — rows of B stream contiguously and
// vector loads never straddle cache lines — so fp32 kernels need no
// separate packing pass at MADE/transformer sizes (K, N ≲ a few hundred;
// the active B panel fits in L2). The int8 path is where packing happens
// for real: quant.cc lays out the quantized panel padded + aligned at
// model-load time, once, and this file's int8 kernels stream it.
//
// Determinism: every kernel fixes the per-C-element reduction order to
// ascending k with a single accumulator chain (SIMD lanes are independent
// element chains), so for a fixed dispatch level results are bit-identical
// across thread counts and row splits — including between the MR=4 and
// MR=1 paths, which perform the same lane-wise operation sequence.

#include "tensor/gemm_kernels.h"

#include <algorithm>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define NARU_HAVE_X86 1
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define NARU_HAVE_NEON 1
#endif

#include "tensor/kernel.h"

namespace naru {
namespace gemm_detail {

namespace {

// ---------------------------------------------------------------------------
// Portable blocked fallback.
// ---------------------------------------------------------------------------

// K-blocking keeps the active B panel hot in cache when K is large; the
// inner j loop is branch-free over the padded width and autovectorizes.
constexpr size_t kPortableKc = 256;

void NNRowsPortable(const float* a, size_t lda, const float* b, size_t ldb,
                    float* c, size_t ldc, size_t lo, size_t hi, size_t k,
                    bool onehot_a) {
  for (size_t k0 = 0; k0 < k; k0 += kPortableKc) {
    const size_t k1 = k0 + kPortableKc < k ? k0 + kPortableKc : k;
    for (size_t i = lo; i < hi; ++i) {
      const float* arow = a + i * lda;
      float* crow = c + i * ldc;
      for (size_t kk = k0; kk < k1; ++kk) {
        const float av = arow[kk];
        if (onehot_a && av == 0.0f) continue;
        const float* brow = b + kk * ldb;
        for (size_t j = 0; j < ldc; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void NTRowsPortable(const float* a, size_t lda, const float* b, size_t ldb,
                    float* c, size_t ldc, size_t lo, size_t hi, size_t kpad,
                    size_t n) {
  for (size_t i = lo; i < hi; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;
      float acc = 0.0f;
      for (size_t kk = 0; kk < kpad; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

void NNRowsInt8Portable(const float* a, size_t lda, const int8_t* q,
                        size_t ldq, const float* scales, float* c, size_t ldc,
                        size_t lo, size_t hi, size_t k, bool onehot_a) {
  // Axpy into a row-sized fp32 accumulator so the int8 panel streams
  // row-major, then apply the per-column scales once.
  std::vector<float> acc(ldc);
  for (size_t i = lo; i < hi; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    const float* arow = a + i * lda;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (onehot_a && av == 0.0f) continue;
      const int8_t* qrow = q + kk * ldq;
      for (size_t j = 0; j < ldc; ++j) {
        acc[j] += av * static_cast<float>(qrow[j]);
      }
    }
    float* crow = c + i * ldc;
    for (size_t j = 0; j < ldc; ++j) crow[j] += scales[j] * acc[j];
  }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA.
// ---------------------------------------------------------------------------
#if defined(NARU_HAVE_X86)

__attribute__((target("avx2,fma"))) void NNRowsAvx2(
    const float* a, size_t lda, const float* b, size_t ldb, float* c,
    size_t ldc, size_t lo, size_t hi, size_t k, bool onehot_a) {
  size_t i = lo;
  if (!onehot_a) {
    // Dense: 4 C rows x 16 columns per register tile; B rows are loaded
    // once per 4 A rows.
    for (; i + 4 <= hi; i += 4) {
      const float* a0 = a + (i + 0) * lda;
      const float* a1 = a + (i + 1) * lda;
      const float* a2 = a + (i + 2) * lda;
      const float* a3 = a + (i + 3) * lda;
      float* c0 = c + (i + 0) * ldc;
      float* c1 = c + (i + 1) * ldc;
      float* c2 = c + (i + 2) * ldc;
      float* c3 = c + (i + 3) * ldc;
      for (size_t j = 0; j < ldc; j += 16) {
        __m256 s00 = _mm256_loadu_ps(c0 + j);
        __m256 s01 = _mm256_loadu_ps(c0 + j + 8);
        __m256 s10 = _mm256_loadu_ps(c1 + j);
        __m256 s11 = _mm256_loadu_ps(c1 + j + 8);
        __m256 s20 = _mm256_loadu_ps(c2 + j);
        __m256 s21 = _mm256_loadu_ps(c2 + j + 8);
        __m256 s30 = _mm256_loadu_ps(c3 + j);
        __m256 s31 = _mm256_loadu_ps(c3 + j + 8);
        for (size_t kk = 0; kk < k; ++kk) {
          const float* brow = b + kk * ldb + j;
          const __m256 b0 = _mm256_loadu_ps(brow);
          const __m256 b1 = _mm256_loadu_ps(brow + 8);
          const __m256 v0 = _mm256_set1_ps(a0[kk]);
          s00 = _mm256_fmadd_ps(v0, b0, s00);
          s01 = _mm256_fmadd_ps(v0, b1, s01);
          const __m256 v1 = _mm256_set1_ps(a1[kk]);
          s10 = _mm256_fmadd_ps(v1, b0, s10);
          s11 = _mm256_fmadd_ps(v1, b1, s11);
          const __m256 v2 = _mm256_set1_ps(a2[kk]);
          s20 = _mm256_fmadd_ps(v2, b0, s20);
          s21 = _mm256_fmadd_ps(v2, b1, s21);
          const __m256 v3 = _mm256_set1_ps(a3[kk]);
          s30 = _mm256_fmadd_ps(v3, b0, s30);
          s31 = _mm256_fmadd_ps(v3, b1, s31);
        }
        _mm256_storeu_ps(c0 + j, s00);
        _mm256_storeu_ps(c0 + j + 8, s01);
        _mm256_storeu_ps(c1 + j, s10);
        _mm256_storeu_ps(c1 + j + 8, s11);
        _mm256_storeu_ps(c2 + j, s20);
        _mm256_storeu_ps(c2 + j + 8, s21);
        _mm256_storeu_ps(c3 + j, s30);
        _mm256_storeu_ps(c3 + j + 8, s31);
      }
    }
  }
  // Remainder rows, and the one-hot path (axpy order tests A once per k).
  for (; i < hi; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (onehot_a && av == 0.0f) continue;
      const __m256 v = _mm256_set1_ps(av);
      const float* brow = b + kk * ldb;
      for (size_t j = 0; j < ldc; j += 8) {
        _mm256_storeu_ps(
            crow + j,
            _mm256_fmadd_ps(v, _mm256_loadu_ps(brow + j),
                            _mm256_loadu_ps(crow + j)));
      }
    }
  }
}

__attribute__((target("avx2,fma"))) void NTRowsAvx2(
    const float* a, size_t lda, const float* b, size_t ldb, float* c,
    size_t ldc, size_t lo, size_t hi, size_t kpad, size_t n) {
  for (size_t i = lo; i < hi; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    size_t j = 0;
    // 4 dot products at a time share the A row loads; the horizontal
    // reduction lands all 4 sums in one xmm.
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + (j + 0) * ldb;
      const float* b1 = b + (j + 1) * ldb;
      const float* b2 = b + (j + 2) * ldb;
      const float* b3 = b + (j + 3) * ldb;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (size_t kk = 0; kk < kpad; kk += 8) {
        const __m256 av = _mm256_loadu_ps(arow + kk);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + kk), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + kk), acc1);
        acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + kk), acc2);
        acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + kk), acc3);
      }
      const __m256 h01 = _mm256_hadd_ps(acc0, acc1);
      const __m256 h23 = _mm256_hadd_ps(acc2, acc3);
      const __m256 h = _mm256_hadd_ps(h01, h23);
      const __m128 sums = _mm_add_ps(_mm256_castps256_ps128(h),
                                     _mm256_extractf128_ps(h, 1));
      _mm_storeu_ps(crow + j, _mm_add_ps(_mm_loadu_ps(crow + j), sums));
    }
    for (; j < n; ++j) {
      const float* brow = b + j * ldb;
      __m256 acc = _mm256_setzero_ps();
      for (size_t kk = 0; kk < kpad; kk += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                              _mm256_loadu_ps(brow + kk), acc);
      }
      const __m128 lo128 = _mm256_castps256_ps128(acc);
      const __m128 hi128 = _mm256_extractf128_ps(acc, 1);
      __m128 s = _mm_add_ps(lo128, hi128);
      s = _mm_add_ps(s, _mm_movehl_ps(s, s));
      s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
      crow[j] += _mm_cvtss_f32(s);
    }
  }
}

__attribute__((target("avx2,fma"))) void NNRowsInt8Avx2(
    const float* a, size_t lda, const int8_t* q, size_t ldq,
    const float* scales, float* c, size_t ldc, size_t lo, size_t hi, size_t k,
    bool onehot_a) {
  size_t i = lo;
  if (onehot_a) {
    // One-hot rows: gather the hot (k, value) pairs once per row, then run
    // the j-tiled loop over just those entries. Keeping j outermost (the
    // dense tail below) would rescan every zero of A once per tile, and at
    // one-hot densities the branch checks dwarf the actual math.
    std::vector<uint32_t> hot;
    std::vector<float> hotv;
    for (; i < hi; ++i) {
      const float* arow = a + i * lda;
      hot.clear();
      hotv.clear();
      for (size_t kk = 0; kk < k; ++kk) {
        if (arow[kk] != 0.0f) {
          hot.push_back(static_cast<uint32_t>(kk));
          hotv.push_back(arow[kk]);
        }
      }
      float* crow = c + i * ldc;
      for (size_t j = 0; j < ldc; j += 16) {  // ldc is a multiple of 16
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        for (size_t h = 0; h < hot.size(); ++h) {
          const __m256 av = _mm256_set1_ps(hotv[h]);
          const int8_t* qrow = q + hot[h] * ldq + j;
          const __m128i q0 =
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(qrow));
          const __m128i q1 =
              _mm_loadl_epi64(reinterpret_cast<const __m128i*>(qrow + 8));
          acc0 = _mm256_fmadd_ps(
              av, _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q0)), acc0);
          acc1 = _mm256_fmadd_ps(
              av, _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q1)), acc1);
        }
        _mm256_storeu_ps(crow + j,
                         _mm256_fmadd_ps(_mm256_loadu_ps(scales + j), acc0,
                                         _mm256_loadu_ps(crow + j)));
        _mm256_storeu_ps(crow + j + 8,
                         _mm256_fmadd_ps(_mm256_loadu_ps(scales + j + 8),
                                         acc1,
                                         _mm256_loadu_ps(crow + j + 8)));
      }
    }
    return;
  }
  {
    // Dense: 4 rows share each int8 load + convert.
    for (; i + 4 <= hi; i += 4) {
      const float* a0 = a + (i + 0) * lda;
      const float* a1 = a + (i + 1) * lda;
      const float* a2 = a + (i + 2) * lda;
      const float* a3 = a + (i + 3) * lda;
      for (size_t j = 0; j < ldc; j += 8) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        __m256 acc2 = _mm256_setzero_ps();
        __m256 acc3 = _mm256_setzero_ps();
        for (size_t kk = 0; kk < k; ++kk) {
          const __m128i q8 = _mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(q + kk * ldq + j));
          const __m256 w =
              _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
          acc0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[kk]), w, acc0);
          acc1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[kk]), w, acc1);
          acc2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[kk]), w, acc2);
          acc3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[kk]), w, acc3);
        }
        const __m256 sc = _mm256_loadu_ps(scales + j);
        float* c0 = c + (i + 0) * ldc + j;
        float* c1 = c + (i + 1) * ldc + j;
        float* c2 = c + (i + 2) * ldc + j;
        float* c3 = c + (i + 3) * ldc + j;
        _mm256_storeu_ps(c0, _mm256_fmadd_ps(sc, acc0, _mm256_loadu_ps(c0)));
        _mm256_storeu_ps(c1, _mm256_fmadd_ps(sc, acc1, _mm256_loadu_ps(c1)));
        _mm256_storeu_ps(c2, _mm256_fmadd_ps(sc, acc2, _mm256_loadu_ps(c2)));
        _mm256_storeu_ps(c3, _mm256_fmadd_ps(sc, acc3, _mm256_loadu_ps(c3)));
      }
    }
  }
  for (; i < hi; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (size_t j = 0; j < ldc; j += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        if (onehot_a && av == 0.0f) continue;
        const __m128i q8 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i*>(q + kk * ldq + j));
        acc = _mm256_fmadd_ps(
            _mm256_set1_ps(av),
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8)), acc);
      }
      _mm256_storeu_ps(
          crow + j,
          _mm256_fmadd_ps(_mm256_loadu_ps(scales + j), acc,
                          _mm256_loadu_ps(crow + j)));
    }
  }
}

#endif  // NARU_HAVE_X86

// ---------------------------------------------------------------------------
// NEON (compile-time on ARM; every AArch64 core has it).
// ---------------------------------------------------------------------------
#if defined(NARU_HAVE_NEON)

void NNRowsNeon(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t lo, size_t hi, size_t k,
                bool onehot_a) {
  for (size_t i = lo; i < hi; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (onehot_a && av == 0.0f) continue;
      const float32x4_t v = vdupq_n_f32(av);
      const float* brow = b + kk * ldb;
      for (size_t j = 0; j < ldc; j += 8) {
        vst1q_f32(crow + j,
                  vfmaq_f32(vld1q_f32(crow + j), v, vld1q_f32(brow + j)));
        vst1q_f32(crow + j + 4, vfmaq_f32(vld1q_f32(crow + j + 4), v,
                                          vld1q_f32(brow + j + 4)));
      }
    }
  }
}

void NTRowsNeon(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t lo, size_t hi, size_t kpad,
                size_t n) {
  for (size_t i = lo; i < hi; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;
      float32x4_t acc0 = vdupq_n_f32(0.0f);
      float32x4_t acc1 = vdupq_n_f32(0.0f);
      for (size_t kk = 0; kk < kpad; kk += 8) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(arow + kk), vld1q_f32(brow + kk));
        acc1 = vfmaq_f32(acc1, vld1q_f32(arow + kk + 4),
                         vld1q_f32(brow + kk + 4));
      }
      crow[j] += vaddvq_f32(vaddq_f32(acc0, acc1));
    }
  }
}

#endif  // NARU_HAVE_NEON

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void NNRowsSimd(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t lo, size_t hi, size_t k,
                bool onehot_a) {
  switch (DetectedSimdLevel()) {
#if defined(NARU_HAVE_X86)
    case SimdLevel::kAvx2:
      NNRowsAvx2(a, lda, b, ldb, c, ldc, lo, hi, k, onehot_a);
      return;
#endif
#if defined(NARU_HAVE_NEON)
    case SimdLevel::kNeon:
      NNRowsNeon(a, lda, b, ldb, c, ldc, lo, hi, k, onehot_a);
      return;
#endif
    default:
      NNRowsPortable(a, lda, b, ldb, c, ldc, lo, hi, k, onehot_a);
      return;
  }
}

void NTRowsSimd(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t lo, size_t hi, size_t kpad,
                size_t n) {
  switch (DetectedSimdLevel()) {
#if defined(NARU_HAVE_X86)
    case SimdLevel::kAvx2:
      NTRowsAvx2(a, lda, b, ldb, c, ldc, lo, hi, kpad, n);
      return;
#endif
#if defined(NARU_HAVE_NEON)
    case SimdLevel::kNeon:
      NTRowsNeon(a, lda, b, ldb, c, ldc, lo, hi, kpad, n);
      return;
#endif
    default:
      NTRowsPortable(a, lda, b, ldb, c, ldc, lo, hi, kpad, n);
      return;
  }
}

void NNRowsInt8(const float* a, size_t lda, const int8_t* q, size_t ldq,
                const float* scales, float* c, size_t ldc, size_t lo,
                size_t hi, size_t k, bool onehot_a) {
  switch (DetectedSimdLevel()) {
#if defined(NARU_HAVE_X86)
    case SimdLevel::kAvx2:
      NNRowsInt8Avx2(a, lda, q, ldq, scales, c, ldc, lo, hi, k, onehot_a);
      return;
#endif
    default:
      // NEON falls through to the portable int8 path; only the fp32 NEON
      // kernels are specialized today.
      NNRowsInt8Portable(a, lda, q, ldq, scales, c, ldc, lo, hi, k,
                         onehot_a);
      return;
  }
}

}  // namespace gemm_detail
}  // namespace naru
