#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace naru {

void ReluForward(const Matrix& in, Matrix* out) {
  if (out != &in) out->Resize(in.rows(), in.cols());
  const float* src = in.data();
  float* dst = out->data();
  const size_t n = in.size();
  for (size_t i = 0; i < n; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void ReluBackward(const Matrix& x, const Matrix& dy, Matrix* dx) {
  NARU_CHECK(x.rows() == dy.rows() && x.cols() == dy.cols());
  if (dx != &dy) dx->Resize(dy.rows(), dy.cols());
  const float* xs = x.data();
  const float* dys = dy.data();
  float* dxs = dx->data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) dxs[i] = xs[i] > 0.0f ? dys[i] : 0.0f;
}

void SoftmaxRows(const Matrix& logits, Matrix* probs) {
  if (probs != &logits) probs->Resize(logits.rows(), logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.Row(r);
    float* out = probs->Row(r);
    const size_t n = logits.cols();
    float mx = in[0];
    for (size_t i = 1; i < n; ++i) mx = std::max(mx, in[i]);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      const float e = std::exp(in[i] - mx);
      out[i] = e;
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t i = 0; i < n; ++i) out[i] *= inv;
  }
}

void SoftmaxRowsSlice(const Matrix& logits, size_t begin, size_t end,
                      Matrix* probs) {
  NARU_CHECK(end <= logits.cols() && begin < end);
  NARU_CHECK(probs->rows() == logits.rows() &&
             probs->cols() == logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.Row(r);
    float* out = probs->Row(r);
    float mx = in[begin];
    for (size_t i = begin + 1; i < end; ++i) mx = std::max(mx, in[i]);
    double sum = 0;
    for (size_t i = begin; i < end; ++i) {
      const float e = std::exp(in[i] - mx);
      out[i] = e;
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (size_t i = begin; i < end; ++i) out[i] *= inv;
  }
}

double LogSumExpSlice(const float* row, size_t begin, size_t end) {
  NARU_CHECK(begin < end);
  float mx = row[begin];
  for (size_t i = begin + 1; i < end; ++i) mx = std::max(mx, row[i]);
  double sum = 0;
  for (size_t i = begin; i < end; ++i) {
    sum += std::exp(static_cast<double>(row[i]) - mx);
  }
  return static_cast<double>(mx) + std::log(sum);
}

void Axpy(const Matrix& a, float scale, Matrix* c) {
  NARU_CHECK(a.rows() == c->rows() && a.cols() == c->cols());
  const float* src = a.data();
  float* dst = c->data();
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) dst[i] += scale * src[i];
}

double L2Norm(const Matrix& m) { return std::sqrt(m.SumSquares()); }

}  // namespace naru
