// Dense row-major float32 matrix — the workhorse of the NN substrate.
//
// Deliberately minimal: shape + contiguous storage + element access. All
// numeric kernels live in gemm.h / ops.h so they can be tuned independently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"

namespace naru {

/// Row-major float matrix. A batch of activations is one Matrix with one
/// example per row.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* Row(size_t r) {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& At(size_t r, size_t c) {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Reshapes to (rows, cols), reallocating if needed. CONTRACT: when
  /// `cols` is unchanged, the leading min(old_rows, rows) rows keep their
  /// contents (flat row-major storage, vector::resize semantics) — the
  /// plan executor (src/plan) truncates stacked walks by shrinking rows
  /// and relies on this. Contents are unspecified only for the newly
  /// added tail and whenever `cols` changes.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// Sets every element to `v`.
  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void Zero() { Fill(0.0f); }

  /// Frobenius-style helpers used by the optimizer and tests.
  double SumSquares() const;
  double AbsMax() const;

  std::string ShapeString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// Row-major int32 matrix for dictionary codes (one tuple per row).
class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  int32_t* Row(size_t r) {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const int32_t* Row(size_t r) const {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  int32_t& At(size_t r, size_t c) {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  int32_t At(size_t r, size_t c) const {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Same preservation contract as Matrix::Resize: with `cols` unchanged,
  /// the leading min(old_rows, rows) rows keep their contents.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }
  void Fill(int32_t v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int32_t> data_;
};

}  // namespace naru
