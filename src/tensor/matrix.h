// Dense row-major float32 matrix — the workhorse of the NN substrate.
//
// Deliberately minimal: shape + storage + element access. All numeric
// kernels live in gemm.h / ops.h so they can be tuned independently.
//
// Storage layout: rows are padded to a 64-byte (16-float) leading dimension
// and the buffer itself is 64-byte aligned, so SIMD kernels can load/store
// full vectors of any row without straddling cache lines and without scalar
// remainder handling (stride() is always a multiple of 16).
//
// INVARIANT: padding elements (columns [cols(), stride()) of each row) are
// always zero. Every Matrix mutation path maintains this: construction,
// Resize and Fill zero the padding, and kernels only write logical columns
// (GEMM C-padding stays zero because B/W padding is zero). Flat loops over
// [data(), data() + size()) are allowed only when they preserve zeros at
// zero — e.g. relu, axpy, scale, Adam updates — which all existing flat
// users do. size() is the PHYSICAL buffer length (rows * stride), not
// rows * cols.
#pragma once

#include <algorithm>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "util/macros.h"

namespace naru {

/// Minimal std::allocator replacement with a fixed over-alignment, used so
/// Matrix (and the int8 weight buffers in quant.h) can keep std::vector
/// value semantics while guaranteeing 64-byte base alignment.
template <typename T, size_t kAlign>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, kAlign>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlign)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kAlign));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, kAlign>;
  };

  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

/// Row alignment of Matrix storage, in bytes and in floats.
constexpr size_t kMatrixRowAlignBytes = 64;
constexpr size_t kMatrixRowAlignFloats = kMatrixRowAlignBytes / sizeof(float);

/// Leading dimension (in floats) for a row of `cols` logical columns.
constexpr size_t PaddedStride(size_t cols) {
  return (cols + kMatrixRowAlignFloats - 1) / kMatrixRowAlignFloats *
         kMatrixRowAlignFloats;
}

/// Row-major float matrix. A batch of activations is one Matrix with one
/// example per row.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows),
        cols_(cols),
        stride_(PaddedStride(cols)),
        data_(rows * stride_, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// Leading dimension in floats: Row(r+1) - Row(r). A multiple of 16;
  /// equal for any two matrices with the same cols().
  size_t stride() const { return stride_; }
  /// PHYSICAL element count (rows * stride), including zero padding. Flat
  /// loops over this range must preserve zeros at zero (see header).
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* Row(size_t r) {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * stride_;
  }
  const float* Row(size_t r) const {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * stride_;
  }

  float& At(size_t r, size_t c) {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  float At(size_t r, size_t c) const {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// Reshapes to (rows, cols), reallocating if needed. CONTRACT: when
  /// `cols` is unchanged, the leading min(old_rows, rows) rows keep their
  /// contents (the stride is a function of cols, so row offsets do not
  /// move) — the plan executor (src/plan) truncates stacked walks by
  /// shrinking rows and relies on this. Contents are unspecified only for
  /// the newly added tail and whenever `cols` changes. Padding is zero in
  /// all cases.
  void Resize(size_t rows, size_t cols) {
    const size_t stride = PaddedStride(cols);
    if (cols == cols_) {
      // vector::resize keeps the prefix and zero-fills growth, which keeps
      // both the preservation contract and the padding invariant.
      data_.resize(rows * stride);
    } else {
      // A cols change (even within the same stride) could leave old data in
      // what is now padding, so start from zeros.
      data_.assign(rows * stride, 0.0f);
    }
    rows_ = rows;
    cols_ = cols;
    stride_ = stride;
  }

  /// Sets every logical element to `v`; padding stays zero.
  void Fill(float v) {
    if (v == 0.0f) {
      std::fill(data_.begin(), data_.end(), 0.0f);
      return;
    }
    for (size_t r = 0; r < rows_; ++r) {
      float* row = Row(r);
      for (size_t c = 0; c < cols_; ++c) row[c] = v;
    }
  }
  void Zero() { Fill(0.0f); }

  /// Frobenius-style helpers used by the optimizer and tests.
  double SumSquares() const;
  double AbsMax() const;

  std::string ShapeString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  std::vector<float, AlignedAllocator<float, kMatrixRowAlignBytes>> data_;
};

/// Row-major int32 matrix for dictionary codes (one tuple per row).
/// Deliberately unpadded: codes feed scalar gather loops, not SIMD.
class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  int32_t* Row(size_t r) {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const int32_t* Row(size_t r) const {
    NARU_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  int32_t& At(size_t r, size_t c) {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  int32_t At(size_t r, size_t c) const {
    NARU_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Same preservation contract as Matrix::Resize: with `cols` unchanged,
  /// the leading min(old_rows, rows) rows keep their contents.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }
  void Fill(int32_t v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int32_t> data_;
};

}  // namespace naru
