#include "tensor/quant.h"

#include <cmath>

#include "tensor/gemm_kernels.h"
#include "util/macros.h"
#include "util/thread_pool.h"

namespace naru {

namespace {
constexpr size_t kMinRowsPerTask = 16;
}  // namespace

void QuantizeWeightsPerColumn(const Matrix& w, QuantizedWeights* q) {
  const size_t rows = w.rows();
  const size_t cols = w.cols();
  const size_t stride = PaddedStride(cols);
  q->rows = rows;
  q->cols = cols;
  q->stride = stride;
  q->data.assign(rows * stride, 0);
  q->scales.assign(stride, 0.0f);

  for (size_t j = 0; j < cols; ++j) {
    float absmax = 0.0f;
    for (size_t i = 0; i < rows; ++i) {
      const float v = std::fabs(w.At(i, j));
      if (v > absmax) absmax = v;
    }
    if (absmax == 0.0f) continue;  // scale 0, codes 0
    const float scale = absmax / 127.0f;
    q->scales[j] = scale;
    const float inv = 127.0f / absmax;
    for (size_t i = 0; i < rows; ++i) {
      long code = std::lround(w.At(i, j) * inv);
      if (code > 127) code = 127;
      if (code < -127) code = -127;
      q->data[i * stride + j] = static_cast<int8_t>(code);
    }
  }
}

void DequantizeWeights(const QuantizedWeights& q, Matrix* out) {
  out->Resize(q.rows, q.cols);
  for (size_t i = 0; i < q.rows; ++i) {
    float* row = out->Row(i);
    const int8_t* qrow = q.data.data() + i * q.stride;
    for (size_t j = 0; j < q.cols; ++j) {
      row[j] = q.scales[j] * static_cast<float>(qrow[j]);
    }
  }
}

void GemmNNInt8(const Matrix& a, const QuantizedWeights& q, Matrix* c,
                bool accumulate, InputHint hint) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = q.cols;
  NARU_CHECK(q.rows == k);
  if (accumulate) {
    NARU_CHECK(c->rows() == m && c->cols() == n);
  } else {
    c->Resize(m, n);
    c->Zero();
  }
  NARU_CHECK(c->stride() == q.stride);
  const bool onehot = hint == InputHint::kOneHot;
  ParallelFor(
      0, m,
      [&](size_t lo, size_t hi) {
        gemm_detail::NNRowsInt8(a.data(), a.stride(), q.data.data(), q.stride,
                                q.scales.data(), c->data(), c->stride(), lo,
                                hi, k, onehot);
      },
      kMinRowsPerTask);
}

}  // namespace naru
