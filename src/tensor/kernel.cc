#include "tensor/kernel.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace naru {

namespace {

SimdLevel ProbeSimdLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kNone;
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  return SimdLevel::kNeon;
#else
  return SimdLevel::kNone;
#endif
}

// -1 = no override; otherwise holds a SimdLevel value.
int g_simd_override = -1;

}  // namespace

const char* KernelKindName(KernelKind k) {
  switch (k) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kSimd:
      return "simd";
    case KernelKind::kSimdInt8:
      return "simd_int8";
  }
  return "unknown";
}

bool ParseKernelKind(const std::string& s, KernelKind* out) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "scalar") {
    *out = KernelKind::kScalar;
  } else if (lower == "simd") {
    *out = KernelKind::kSimd;
  } else if (lower == "simd_int8" || lower == "int8") {
    *out = KernelKind::kSimdInt8;
  } else {
    return false;
  }
  return true;
}

const char* SimdLevelName(SimdLevel l) {
  switch (l) {
    case SimdLevel::kNone:
      return "none";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  if (g_simd_override >= 0) return static_cast<SimdLevel>(g_simd_override);
  static const SimdLevel level = ProbeSimdLevel();
  return level;
}

std::string SimdDispatchString() {
  std::string s = StrFormat("simd dispatch: %s",
                            SimdLevelName(DetectedSimdLevel()));
  if (g_simd_override >= 0) s += " (test override)";
  return s;
}

void SetSimdLevelOverrideForTest(SimdLevel level) {
  g_simd_override = static_cast<int>(level);
}

void ClearSimdLevelOverrideForTest() { g_simd_override = -1; }

}  // namespace naru
