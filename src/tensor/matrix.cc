#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace naru {

double Matrix::SumSquares() const {
  double s = 0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

double Matrix::AbsMax() const {
  double m = 0;
  for (float v : data_) m = std::max(m, std::fabs(static_cast<double>(v)));
  return m;
}

std::string Matrix::ShapeString() const {
  return StrFormat("[%zu x %zu]", rows_, cols_);
}

}  // namespace naru
