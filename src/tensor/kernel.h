// Kernel selection and runtime CPU dispatch for the tensor layer.
//
// The inference path can run on one of three kernel families:
//   kScalar   — the original ikj loops in gemm.cc; always available, the
//               correctness reference, and the default (existing bit-identity
//               tests pin it).
//   kSimd     — cache-blocked fp32 kernels with explicit SIMD inner loops
//               (AVX2/FMA on x86, NEON on ARM, portable blocked fallback
//               elsewhere), selected at runtime via DetectedSimdLevel().
//   kSimdInt8 — kSimd plus per-output-channel int8 weights on Linear /
//               MaskedLinear forward passes (fp32 activations and
//               accumulation); layers without prepared int8 weights fall
//               back to the fp32 SIMD path.
//
// Determinism contract: for a FIXED kernel choice, every GEMM partitions
// work by output row and keeps a fixed intra-row reduction order, so
// results are bit-identical across thread counts and batch splits. Results
// are NOT bit-identical across different kernel choices (FMA contraction
// and register blocking change rounding); the serving layer keys its memo
// caches on the kernel for exactly this reason.
#pragma once

#include <cstdint>
#include <string>

namespace naru {

/// Which kernel family the forward path uses. Training always uses kScalar.
enum class KernelKind : uint8_t {
  kScalar = 0,
  kSimd = 1,
  kSimdInt8 = 2,
};

/// "scalar" / "simd" / "simd_int8".
const char* KernelKindName(KernelKind k);

/// Parses "scalar" / "simd" / "simd_int8" (case-insensitive). Returns false
/// and leaves *out untouched on anything else.
bool ParseKernelKind(const std::string& s, KernelKind* out);

/// Instruction set the SIMD kernels dispatch to on this machine.
enum class SimdLevel : uint8_t {
  kNone = 0,  // portable blocked fallback
  kAvx2 = 1,  // AVX2 + FMA
  kNeon = 2,  // ARM NEON
};

/// "none" / "avx2" / "neon".
const char* SimdLevelName(SimdLevel l);

/// Probes the CPU once and caches the answer. kAvx2 requires both AVX2 and
/// FMA; kNeon is a compile-time property of ARM builds.
SimdLevel DetectedSimdLevel();

/// One-line dispatch probe for bench banners and `serve` startup, e.g.
/// "simd dispatch: avx2". Mentions an active test override when present.
std::string SimdDispatchString();

/// Test seam: forces DetectedSimdLevel() to return `level` so the portable
/// fallback (and the NEON-less path) can be exercised on any host. Call
/// ClearSimdLevelOverrideForTest() to restore probing. Not thread-safe;
/// intended for single-threaded test setup only.
void SetSimdLevelOverrideForTest(SimdLevel level);
void ClearSimdLevelOverrideForTest();

}  // namespace naru
