// Int8 weight quantization for the inference path.
//
// Per-output-channel symmetric quantization: each weight column j (one
// output unit of a Linear/MaskedLinear) gets scale_j = max_i |W(i,j)| / 127
// and int8 codes q = round(w / scale_j) clamped to [-127, 127]. Activations
// and accumulation stay fp32; the scale is applied once per output element,
// so the kernel is "int8 storage, fp32 math" — the accuracy-conservative
// end of the quantization spectrum, matching the paper's observation
// (Table 7) that these models tolerate aggressive size reduction.
//
// The quantized panel is laid out padded to the Matrix stride (64-byte
// rows, zero padding, zero scales for padding columns), i.e. it is packed
// for the SIMD kernels at quantization time — once, at model load — so the
// hot loop does no repacking. Masked (exactly-zero) weights quantize to
// exactly zero, preserving MADE's autoregressive masking.
//
// Train-time weights are untouched: quantization reads Matrix weights and
// produces a side buffer; requantize after any weight update.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/matrix.h"

namespace naru {

/// Packed int8 weights for one Linear layer: W is (in x out) like the fp32
/// Matrix it mirrors.
struct QuantizedWeights {
  size_t rows = 0;    // input dim (K)
  size_t cols = 0;    // output dim (N), logical
  size_t stride = 0;  // PaddedStride(cols)
  std::vector<int8_t, AlignedAllocator<int8_t, kMatrixRowAlignBytes>> data;
  // One fp32 scale per output column, `stride` entries, padding zero.
  std::vector<float, AlignedAllocator<float, kMatrixRowAlignBytes>> scales;

  bool valid() const { return !data.empty(); }
  void Clear() {
    rows = cols = stride = 0;
    data.clear();
    scales.clear();
  }
};

/// Quantizes `w` per output column into `q` (packed + padded as above).
/// All-zero columns get scale 0 and all-zero codes.
void QuantizeWeightsPerColumn(const Matrix& w, QuantizedWeights* q);

/// Reconstructs fp32 weights from `q` (tests and error analysis).
void DequantizeWeights(const QuantizedWeights& q, Matrix* out);

/// C(MxN) = A(MxK) * dequant(Q) [+ C if accumulate]. fp32 accumulation,
/// per-column scale applied once at the end; same row-parallel, fixed
/// reduction-order determinism contract as GemmNN.
void GemmNNInt8(const Matrix& a, const QuantizedWeights& q, Matrix* c,
                bool accumulate = false, InputHint hint = InputHint::kDense);

}  // namespace naru
