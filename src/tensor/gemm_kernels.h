// Internal raw-pointer row-range kernels behind GemmNN/GemmNT (gemm.h) and
// GemmNNInt8 (quant.h). Not part of the public tensor API; gemm.cc and
// quant.cc call these from inside their ParallelFor row partitions, and
// tests reach them indirectly through the public entry points plus the
// SimdLevel test override (kernel.h).
//
// Conventions shared by all kernels here:
//   - All strides are in elements. Pointers from Matrix are 64-byte aligned
//     with strides that are multiples of 16 floats, but the kernels only
//     require that reading/writing the full padded width is legal.
//   - Each call owns C rows [lo, hi) exclusively; kernels always accumulate
//     into C (callers zero C first for the non-accumulate case).
//   - Padding columns of B (and the int8 weight panel / its scales) are
//     zero, so accumulating over the padded width leaves C padding zero.
//   - Per C element the reduction order is fixed (ascending k, one
//     accumulator chain), independent of [lo, hi): bit-identical results
//     across thread counts for a fixed dispatch level.
#pragma once

#include <cstddef>
#include <cstdint>

namespace naru {
namespace gemm_detail {

/// C rows [lo, hi) += A * B. A is (m x k) with leading dim lda; B is
/// (k x n) with leading dim ldb; C has leading dim ldc. REQUIRES ldb == ldc
/// (both PaddedStride(n)): the j loop runs over the full padded width with
/// no remainder handling. `onehot_a` enables the zero-skip on A values.
void NNRowsSimd(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t lo, size_t hi, size_t k,
                bool onehot_a);

/// C rows [lo, hi) += A * B^T. A is (m x k) with leading dim lda; B is
/// (n x k) with leading dim ldb; C has leading dim ldc. REQUIRES
/// lda == ldb (both PaddedStride(k)): dot products run over the padded
/// width kpad (zero padding contributes zero). n is C's logical width.
void NTRowsSimd(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t lo, size_t hi, size_t kpad,
                size_t n);

/// C rows [lo, hi) += A * (int8 weights * per-column scales). Weights are
/// (k x n) int8 with leading dim ldq; `scales` has ldq entries (padding
/// zero). Accumulation is fp32 per output element with the per-column scale
/// applied once at the end: c[i][j] += scales[j] * sum_k a[i][k]*q[k][j].
/// REQUIRES ldq == ldc.
void NNRowsInt8(const float* a, size_t lda, const int8_t* q, size_t ldq,
                const float* scales, float* c, size_t ldc, size_t lo,
                size_t hi, size_t k, bool onehot_a);

}  // namespace gemm_detail
}  // namespace naru
