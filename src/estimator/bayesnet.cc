#include "estimator/bayesnet.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/macros.h"

namespace naru {

BayesNet::BayesNet(const Table& table, BayesNetConfig config)
    : config_(config) {
  NARU_CHECK(table.num_rows() > 0);
  const size_t n = table.num_columns();
  domains_.resize(n);
  for (size_t c = 0; c < n; ++c) domains_[c] = table.column(c).DomainSize();
  LearnStructure(table);
  FitCpts(table);
}

double BayesNet::PairMutualInformation(const Table& table, size_t a,
                                       size_t b, size_t row_limit) const {
  const auto& ca = table.column(a).codes();
  const auto& cb = table.column(b).codes();
  const size_t rows = row_limit == 0
                          ? ca.size()
                          : std::min(ca.size(), row_limit);
  // Joint and marginal counts. Keys pack (code_a, code_b) into 64 bits.
  std::unordered_map<uint64_t, uint32_t> joint;
  std::vector<uint32_t> ma(domains_[a], 0), mb(domains_[b], 0);
  joint.reserve(rows / 4);
  for (size_t r = 0; r < rows; ++r) {
    const uint32_t va = static_cast<uint32_t>(ca[r]);
    const uint32_t vb = static_cast<uint32_t>(cb[r]);
    ++joint[(static_cast<uint64_t>(va) << 32) | vb];
    ++ma[va];
    ++mb[vb];
  }
  const double inv = 1.0 / static_cast<double>(rows);
  double mi = 0;
  for (const auto& [key, cnt] : joint) {
    const uint32_t va = static_cast<uint32_t>(key >> 32);
    const uint32_t vb = static_cast<uint32_t>(key & 0xffffffffu);
    const double pab = cnt * inv;
    const double pa = ma[va] * inv;
    const double pb = mb[vb] * inv;
    mi += pab * std::log(pab / (pa * pb));
  }
  return std::max(mi, 0.0);
}

void BayesNet::LearnStructure(const Table& table) {
  const size_t n = domains_.size();
  parents_.assign(n, -1);
  topo_.clear();
  pos_of_.assign(n, 0);

  if (n == 1) {
    topo_ = {0};
    return;
  }

  // Prim's algorithm for the maximum spanning tree under pairwise MI.
  // O(n^2) edge evaluations; each evaluation is one pass over the rows.
  std::vector<double> best_w(n, -1.0);
  std::vector<int> best_from(n, -1);
  std::vector<uint8_t> in_tree(n, 0);
  in_tree[0] = 1;
  topo_.push_back(0);
  for (size_t v = 1; v < n; ++v) {
    best_w[v] = PairMutualInformation(table, 0, v, config_.mi_sample_rows);
    best_from[v] = 0;
  }
  for (size_t step = 1; step < n; ++step) {
    size_t pick = 0;
    double w = -1;
    for (size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best_w[v] > w) {
        w = best_w[v];
        pick = v;
      }
    }
    in_tree[pick] = 1;
    parents_[pick] = best_from[pick];
    topo_.push_back(pick);  // Prim order is parents-before-children
    for (size_t v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double mi =
          PairMutualInformation(table, pick, v, config_.mi_sample_rows);
      if (mi > best_w[v]) {
        best_w[v] = mi;
        best_from[v] = static_cast<int>(pick);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) pos_of_[topo_[i]] = i;
}

void BayesNet::FitCpts(const Table& table) {
  const size_t n = domains_.size();
  const size_t rows = table.num_rows();
  const double alpha = config_.laplace_alpha;
  cpts_.resize(n);
  size_bytes_ = 0;

  for (size_t v = 0; v < n; ++v) {
    const int p = parents_[v];
    const size_t dv = domains_[v];
    const size_t dp = p < 0 ? 1 : domains_[static_cast<size_t>(p)];
    Matrix counts(dp, dv);
    const auto& cv = table.column(v).codes();
    if (p < 0) {
      for (size_t r = 0; r < rows; ++r) {
        counts.At(0, static_cast<size_t>(cv[r])) += 1.0f;
      }
    } else {
      const auto& cp = table.column(static_cast<size_t>(p)).codes();
      for (size_t r = 0; r < rows; ++r) {
        counts.At(static_cast<size_t>(cp[r]), static_cast<size_t>(cv[r])) +=
            1.0f;
      }
    }
    // Row-normalize with Laplace smoothing: P(v|p) has no zero cells, so
    // LogProbRows stays finite and the sampler's truncations stay valid.
    for (size_t rp = 0; rp < dp; ++rp) {
      float* row = counts.Row(rp);
      double z = 0;
      for (size_t x = 0; x < dv; ++x) z += row[x];
      const double denom = z + alpha * static_cast<double>(dv);
      for (size_t x = 0; x < dv; ++x) {
        row[x] = static_cast<float>((row[x] + alpha) / denom);
      }
    }
    size_bytes_ += dp * dv * sizeof(float);
    cpts_[v] = std::move(counts);
  }
}

double BayesNet::ExactSelectivity(const Query& query) const {
  const size_t n = domains_.size();
  NARU_CHECK(query.num_columns() == n);
  if (query.HasEmptyRegion()) return 0.0;

  // factor[v][x] accumulates the product of children's messages at X_v = x.
  std::vector<std::vector<double>> factor(n);
  for (size_t v = 0; v < n; ++v) factor[v].assign(domains_[v], 1.0);

  // Leaf-to-root: reverse topological order guarantees every child of v is
  // processed (and folded into factor[v]) before v itself.
  for (size_t i = n; i-- > 1;) {  // skip the root (topo_[0])
    const size_t v = topo_[i];
    const size_t p = static_cast<size_t>(parents_[v]);
    const ValueSet& rv = query.region(v);
    const Matrix& cpt = cpts_[v];
    std::vector<double>& msg = factor[p];  // multiplied in place below
    const std::vector<double>& fv = factor[v];
    for (size_t xp = 0; xp < domains_[p]; ++xp) {
      const float* row = cpt.Row(xp);
      double s = 0;
      if (rv.IsAll()) {
        for (size_t xv = 0; xv < domains_[v]; ++xv) s += row[xv] * fv[xv];
      } else {
        for (size_t xv = 0; xv < domains_[v]; ++xv) {
          if (rv.Contains(static_cast<int32_t>(xv))) s += row[xv] * fv[xv];
        }
      }
      msg[xp] *= s;
    }
  }

  const size_t root = topo_[0];
  const ValueSet& rr = query.region(root);
  const float* marg = cpts_[root].Row(0);
  double total = 0;
  for (size_t x = 0; x < domains_[root]; ++x) {
    if (rr.IsAll() || rr.Contains(static_cast<int32_t>(x))) {
      total += marg[x] * factor[root][x];
    }
  }
  return total;
}

void BayesNet::ConditionalDist(const IntMatrix& samples, size_t pos,
                               Matrix* probs) {
  NARU_CHECK(pos < domains_.size());
  const size_t v = topo_[pos];
  const size_t dv = domains_[v];
  const size_t batch = samples.rows();
  probs->Resize(batch, dv);
  const Matrix& cpt = cpts_[v];
  if (parents_[v] < 0) {
    const float* marg = cpt.Row(0);
    for (size_t r = 0; r < batch; ++r) {
      std::copy(marg, marg + dv, probs->Row(r));
    }
    return;
  }
  // The parent precedes v in topo order, so its sampled code sits at an
  // earlier model position of the samples matrix.
  const size_t parent_pos = pos_of_[static_cast<size_t>(parents_[v])];
  NARU_CHECK(parent_pos < pos);
  for (size_t r = 0; r < batch; ++r) {
    const int32_t xp = samples.At(r, parent_pos);
    const float* row = cpt.Row(static_cast<size_t>(xp));
    std::copy(row, row + dv, probs->Row(r));
  }
}

void BayesNet::LogProbRows(const IntMatrix& tuples,
                           std::vector<double>* out_nats) {
  const size_t n = domains_.size();
  NARU_CHECK(tuples.cols() == n);
  out_nats->assign(tuples.rows(), 0.0);
  for (size_t r = 0; r < tuples.rows(); ++r) {
    double lp = 0;
    for (size_t v = 0; v < n; ++v) {
      const int p = parents_[v];
      const size_t xp =
          p < 0 ? 0 : static_cast<size_t>(tuples.At(r, static_cast<size_t>(p)));
      lp += std::log(static_cast<double>(
          cpts_[v].At(xp, static_cast<size_t>(tuples.At(r, v)))));
    }
    (*out_nats)[r] = lp;
  }
}

}  // namespace naru
