// MSCN baseline (Table 2): supervised deep regression net (Kipf et al.).
//
// Queries are featurized into fixed per-column slots
//   [has_filter, op=eq, op=le, op=ge, literal / (|A_i|-1)]
// (the single-table specialization of MSCN's pooled predicate-set encoder)
// concatenated with a bitmap of which rows of a materialized uniform sample
// satisfy the query — the component the paper finds MSCN's accuracy depends
// on most. A small MLP regresses the min-max-normalized log cardinality,
// trained with MSE on generated (query, true-cardinality) pairs.
//
// Variants (paper §6.1.2): MSCN-base (1K-row sample), MSCN-0 (no sample,
// query features only) and MSCN-10K (10K-row sample).
#pragma once

#include <memory>
#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"
#include "nn/adam.h"
#include "nn/mlp.h"
#include "query/query.h"

namespace naru {

struct MscnConfig {
  /// Materialized-sample rows (0 = MSCN-0).
  size_t sample_rows = 1000;
  size_t hidden1 = 256;
  size_t hidden2 = 128;
  size_t epochs = 40;
  size_t batch_size = 128;
  double lr = 1e-3;
  uint64_t seed = 11;
  std::string name = "MSCN-base";
};

class MscnEstimator : public Estimator {
 public:
  MscnEstimator(const Table& table, MscnConfig config);

  /// Supervised training on (query, true cardinality) pairs. Returns the
  /// final epoch's mean squared error on the normalized targets.
  double Train(const std::vector<Query>& queries,
               const std::vector<int64_t>& true_cards);

  std::string name() const override { return config_.name; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override;

 private:
  /// Writes the feature vector of `query` into row `r` of `x`.
  void Featurize(const Query& query, Matrix* x, size_t r) const;
  size_t FeatureDim() const;

  MscnConfig config_;
  size_t num_rows_;
  size_t num_cols_;
  std::vector<int32_t> sample_;  // row-major (sample_rows x num_cols)
  size_t actual_sample_rows_ = 0;
  Rng rng_;
  std::unique_ptr<Mlp> net_;
};

}  // namespace naru
