#include "estimator/hist_nd.h"

#include <algorithm>

namespace naru {

HistNdEstimator::HistNdEstimator(const Table& table, size_t budget_bytes) {
  const size_t n = table.num_columns();
  domains_.resize(n);
  for (size_t c = 0; c < n; ++c) domains_[c] = table.column(c).DomainSize();

  // Start at one bin per column and greedily double the coarsest column
  // (largest codes-per-bin ratio) while the dense array fits the budget.
  bins_.assign(n, 1);
  const size_t max_cells = std::max<size_t>(budget_bytes / sizeof(float), 1);
  for (;;) {
    size_t best = n;
    double best_ratio = 1.0;
    for (size_t c = 0; c < n; ++c) {
      if (bins_[c] >= domains_[c]) continue;
      const double ratio = static_cast<double>(domains_[c]) /
                           static_cast<double>(bins_[c]);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = c;
      }
    }
    if (best == n) break;  // every column fully resolved
    const size_t grown = std::min(bins_[best] * 2, domains_[best]);
    double cells = static_cast<double>(grown);
    for (size_t c = 0; c < n; ++c) {
      if (c != best) cells *= static_cast<double>(bins_[c]);
      if (cells > static_cast<double>(max_cells)) break;
    }
    if (cells > static_cast<double>(max_cells)) break;
    bins_[best] = grown;
  }

  strides_.assign(n, 1);
  for (size_t c = n; c-- > 1;) {
    strides_[c - 1] = strides_[c] * bins_[c];
  }
  size_t total = strides_[0] * bins_[0];
  cells_.assign(total, 0.0f);

  const float inc = 1.0f / static_cast<float>(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    size_t idx = 0;
    for (size_t c = 0; c < n; ++c) {
      idx += BinOf(c, table.column(c).code(r)) * strides_[c];
    }
    cells_[idx] += inc;
  }
}

double HistNdEstimator::EstimateSelectivity(const Query& query) {
  const size_t n = domains_.size();
  // For each column, list the overlapped bins with their coverage fraction
  // (uniformity within a bin's code range).
  std::vector<std::vector<std::pair<size_t, double>>> per_col(n);
  for (size_t c = 0; c < n; ++c) {
    const ValueSet& region = query.region(c);
    auto& list = per_col[c];
    if (region.IsAll()) {
      for (size_t b = 0; b < bins_[c]; ++b) list.emplace_back(b, 1.0);
      continue;
    }
    for (size_t b = 0; b < bins_[c]; ++b) {
      // Codes covered by bin b: [lo, hi).
      const size_t lo = b * domains_[c] / bins_[c];
      const size_t hi = (b + 1) * domains_[c] / bins_[c];
      if (hi <= lo) continue;
      size_t inside = 0;
      if (region.kind() == ValueSet::Kind::kInterval) {
        const int64_t a = std::max<int64_t>(region.lo(),
                                            static_cast<int64_t>(lo));
        const int64_t z = std::min<int64_t>(region.hi(),
                                            static_cast<int64_t>(hi) - 1);
        inside = z >= a ? static_cast<size_t>(z - a + 1) : 0;
      } else {
        for (size_t v = lo; v < hi; ++v) {
          if (region.Contains(static_cast<int32_t>(v))) ++inside;
        }
      }
      if (inside > 0) {
        list.emplace_back(b, static_cast<double>(inside) /
                                 static_cast<double>(hi - lo));
      }
    }
    if (list.empty()) return 0.0;
  }

  // Sum over the cross product of overlapped bins (recursion over columns).
  double total = 0;
  std::vector<size_t> pick(n, 0);
  // Iterative odometer over per_col lists.
  for (;;) {
    size_t idx = 0;
    double cover = 1.0;
    for (size_t c = 0; c < n; ++c) {
      idx += per_col[c][pick[c]].first * strides_[c];
      cover *= per_col[c][pick[c]].second;
    }
    total += static_cast<double>(cells_[idx]) * cover;
    size_t c = n;
    bool done = true;
    while (c-- > 0) {
      if (++pick[c] < per_col[c].size()) {
        done = false;
        break;
      }
      pick[c] = 0;
      if (c == 0) break;
    }
    if (done) break;
  }
  return std::clamp(total, 0.0, 1.0);
}

}  // namespace naru
