// Sample baseline (Table 2): keeps p% of tuples uniformly at random in
// memory and answers queries by evaluating the predicate on the sample.
// Excellent on high-selectivity queries, collapses when the sample has no
// hits (the paper's low-selectivity tail).
#pragma once

#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"
#include "util/random.h"

namespace naru {

class SampleEstimator : public Estimator {
 public:
  /// Keeps `sample_rows` uniform rows (without replacement).
  SampleEstimator(const Table& table, size_t sample_rows, uint64_t seed);

  /// Sizes the sample to `budget_bytes` at 4 bytes per attribute cell.
  static SampleEstimator FromBudget(const Table& table, size_t budget_bytes,
                                    uint64_t seed);

  std::string name() const override { return name_; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override {
    return rows_ * cols_ * sizeof(int32_t);
  }

  size_t sample_rows() const { return rows_; }

 private:
  std::string name_ = "Sample";
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<int32_t> codes_;  // row-major sample
};

}  // namespace naru
