#include "estimator/mscn.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"

namespace naru {

MscnEstimator::MscnEstimator(const Table& table, MscnConfig config)
    : config_(std::move(config)),
      num_rows_(table.num_rows()),
      num_cols_(table.num_columns()),
      rng_(config_.seed) {
  actual_sample_rows_ = std::min(config_.sample_rows, table.num_rows());
  if (actual_sample_rows_ > 0) {
    std::vector<size_t> indices(table.num_rows());
    for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    for (size_t i = 0; i < actual_sample_rows_; ++i) {
      const size_t j = i + rng_.UniformInt(indices.size() - i);
      std::swap(indices[i], indices[j]);
    }
    sample_.resize(actual_sample_rows_ * num_cols_);
    for (size_t i = 0; i < actual_sample_rows_; ++i) {
      table.GetRowCodes(indices[i], sample_.data() + i * num_cols_);
    }
  }
  net_ = std::make_unique<Mlp>(
      "mscn",
      std::vector<size_t>{FeatureDim(), config_.hidden1, config_.hidden2, 1},
      &rng_);
}

size_t MscnEstimator::FeatureDim() const {
  return 5 * num_cols_ + actual_sample_rows_;
}

void MscnEstimator::Featurize(const Query& query, Matrix* x,
                              size_t r) const {
  float* row = x->Row(r);
  std::fill(row, row + x->cols(), 0.0f);
  // Per-column predicate slots. Regions more complex than an interval are
  // summarized by their bounding interval (the workload only emits
  // {=, <=, >=}, so this is exact in practice).
  for (size_t c = 0; c < num_cols_; ++c) {
    const ValueSet& region = query.region(c);
    float* slot = row + 5 * c;
    if (region.IsAll()) continue;
    slot[0] = 1.0f;
    const size_t domain = region.domain();
    const double denom = domain > 1 ? static_cast<double>(domain - 1) : 1.0;
    int64_t lo = 0;
    int64_t hi = static_cast<int64_t>(domain) - 1;
    if (region.kind() == ValueSet::Kind::kInterval) {
      lo = region.lo();
      hi = region.hi();
    } else if (!region.codes().empty()) {
      lo = region.codes().front();
      hi = region.codes().back();
    }
    if (lo == hi) {
      slot[1] = 1.0f;  // equality
      slot[4] = static_cast<float>(static_cast<double>(lo) / denom);
    } else if (lo == 0) {
      slot[2] = 1.0f;  // <=
      slot[4] = static_cast<float>(static_cast<double>(hi) / denom);
    } else {
      slot[3] = 1.0f;  // >=
      slot[4] = static_cast<float>(static_cast<double>(lo) / denom);
    }
  }
  // Sample bitmap: 1 for each materialized sample row satisfying the query.
  float* bitmap = row + 5 * num_cols_;
  for (size_t i = 0; i < actual_sample_rows_; ++i) {
    const int32_t* codes = sample_.data() + i * num_cols_;
    bool match = true;
    for (size_t c = 0; c < num_cols_; ++c) {
      const ValueSet& region = query.region(c);
      if (!region.IsAll() && !region.Contains(codes[c])) {
        match = false;
        break;
      }
    }
    bitmap[i] = match ? 1.0f : 0.0f;
  }
}

double MscnEstimator::Train(const std::vector<Query>& queries,
                            const std::vector<int64_t>& true_cards) {
  NARU_CHECK(queries.size() == true_cards.size());
  NARU_CHECK(!queries.empty());
  const size_t q = queries.size();
  const double log_n = std::log(static_cast<double>(std::max<size_t>(
      num_rows_, 2)));

  Matrix features(q, FeatureDim());
  std::vector<float> targets(q);
  for (size_t i = 0; i < q; ++i) {
    Featurize(queries[i], &features, i);
    const double card = std::max<double>(
        1.0, static_cast<double>(true_cards[i]));
    targets[i] = static_cast<float>(std::log(card) / log_n);  // in [0, 1]
  }

  std::vector<Parameter*> params;
  net_->CollectParameters(&params);
  AdamOptions opts;
  opts.lr = config_.lr;
  opts.clip_global_norm = 5.0;
  Adam adam(params, opts);

  std::vector<size_t> order(q);
  for (size_t i = 0; i < q; ++i) order[i] = i;

  double last_epoch_loss = 0;
  Matrix xb;
  Matrix pred;
  Matrix dpred;
  std::vector<float> tb;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    double epoch_loss = 0;
    size_t batches = 0;
    for (size_t start = 0; start < q; start += config_.batch_size) {
      const size_t chunk = std::min(config_.batch_size, q - start);
      xb.Resize(chunk, FeatureDim());
      tb.resize(chunk);
      for (size_t i = 0; i < chunk; ++i) {
        const size_t src = order[start + i];
        std::copy(features.Row(src), features.Row(src) + features.cols(),
                  xb.Row(i));
        tb[i] = targets[src];
      }
      net_->Forward(xb, &pred);
      epoch_loss += MeanSquaredError(pred, tb.data(), &dpred);
      net_->Backward(dpred, nullptr);
      adam.Step();
      ++batches;
    }
    last_epoch_loss = epoch_loss / static_cast<double>(batches);
  }
  return last_epoch_loss;
}

double MscnEstimator::EstimateSelectivity(const Query& query) {
  Matrix x(1, FeatureDim());
  Featurize(query, &x, 0);
  Matrix y;
  net_->ForwardInference(x, &y);
  const double t = std::clamp(static_cast<double>(y.At(0, 0)), 0.0, 1.0);
  const double card =
      std::pow(static_cast<double>(std::max<size_t>(num_rows_, 2)), t);
  return std::min(card / static_cast<double>(num_rows_), 1.0);
}

size_t MscnEstimator::SizeBytes() const {
  size_t bytes = sample_.size() * sizeof(int32_t);
  std::vector<Parameter*> params;
  net_->CollectParameters(&params);
  // CollectParameters is non-const on Mlp; fall back to summing shapes.
  bytes += ParameterBytes(params);
  return bytes;
}

}  // namespace naru
