// Indep baseline (Table 2): perfect per-column selectivities combined by
// multiplication. Its error isolates the cost of the attribute value
// independence assumption alone, since the marginals are exact.
#pragma once

#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"

namespace naru {

class IndepEstimator : public Estimator {
 public:
  explicit IndepEstimator(const Table& table);

  std::string name() const override { return "Indep"; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override;

 private:
  /// prefix_[c][v] = #rows with code < v in column c (exact marginals).
  std::vector<std::vector<int64_t>> prefix_;
  size_t num_rows_;
};

}  // namespace naru
