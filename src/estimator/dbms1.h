// DBMS-1 baseline (Table 2): a commercial-style estimator with 1D stats
// plus inter-column distinct-count information.
//
// Per-column estimates come from the same MCV + equi-depth synopses as
// Postgres1D, but predicates are combined with *exponential backoff*
// (the documented behaviour of a major commercial optimizer): with
// per-column selectivities sorted ascending s1 <= s2 <= ..., the combined
// selectivity is s1 * s2^(1/2) * s3^(1/4) * s4^(1/8), remaining predicates
// ignored. A pairwise distinct-pair correction nudges the first two factors
// toward the observed two-column correlation: for the two most selective
// filtered columns (a, b), the expected distinct-pair count under
// independence d(a)*d(b) is compared with the observed distinct pair count,
// and the backoff exponent adapts accordingly. This reproduces DBMS-1's
// "much better than AVI, far worse than Naru" tail profile (Table 3).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "estimator/column_synopsis.h"
#include "estimator/estimator.h"

namespace naru {

class Dbms1Estimator : public Estimator {
 public:
  Dbms1Estimator(const Table& table, size_t num_mcvs = 100,
                 size_t num_buckets = 1000);

  std::string name() const override { return "DBMS-1"; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override;

 private:
  /// Correlation factor in [0,1] for a column pair: observed distinct
  /// pairs / min(rows, d(a)*d(b)). 1 = independent-looking, small = highly
  /// correlated.
  double PairIndependenceFactor(size_t a, size_t b) const;

  std::vector<ColumnSynopsis> columns_;
  std::vector<size_t> distinct_;
  /// Distinct pair counts for all column pairs (a < b).
  std::unordered_map<uint64_t, int64_t> pair_distinct_;
  size_t num_rows_ = 0;
};

}  // namespace naru
