// Common interface for all selectivity estimators (Table 2).
//
// Estimators are constructed from a table (unsupervised synopses) or from a
// table plus training queries (the supervised baselines) and answer
// conjunctive range/equality queries with a selectivity in [0, 1].
#pragma once

#include <string>
#include <vector>

#include "query/query.h"

namespace naru {

/// Abstract base of every selectivity estimator in the repo — the Naru
/// model-backed estimator, the Table 2 baselines, and the multi-order
/// ensemble all implement this surface, so benchmarks and the serving
/// layer treat them interchangeably.
///
/// Thread-safety is implementation-defined: NaruEstimator's batched paths
/// (EstimateBatch via InferenceEngine / AsyncEngine) manage their own
/// synchronization, but most baselines assume single-threaded use.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Display name used in benchmark tables (e.g. "Naru-2000").
  virtual std::string name() const = 0;

  /// Estimated fraction of rows satisfying `query`.
  virtual double EstimateSelectivity(const Query& query) = 0;

  /// Estimates a batch of queries, writing one selectivity per query into
  /// `out` (resized to queries.size()). The default loops over
  /// EstimateSelectivity; estimators with a cheaper amortized path (Naru's
  /// serving engine, the multi-order ensemble) override it. For a fixed
  /// seed the batch results must equal the sequential ones exactly, so
  /// callers may mix the two paths freely.
  virtual void EstimateBatch(const std::vector<Query>& queries,
                             std::vector<double>* out) {
    out->resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      (*out)[i] = EstimateSelectivity(queries[i]);
    }
  }

  /// Storage footprint charged against the paper's per-dataset budget.
  virtual size_t SizeBytes() const = 0;

  /// Convenience: selectivity scaled to a cardinality.
  double EstimateCardinality(const Query& query, size_t num_rows) {
    return EstimateSelectivity(query) * static_cast<double>(num_rows);
  }
};

}  // namespace naru
