// Postgres baseline (Table 2): per-column MCVs + equi-depth histograms
// combined under the attribute value independence (AVI) assumption —
// the selectivity machinery of a stock open-source DBMS (eqsel /
// scalarltsel analogues), tuned to a generous per-column bucket count the
// way the paper tunes Postgres to its 10,000-bin maximum.
#pragma once

#include <vector>

#include "data/table.h"
#include "estimator/column_synopsis.h"
#include "estimator/estimator.h"

namespace naru {

class Postgres1dEstimator : public Estimator {
 public:
  Postgres1dEstimator(const Table& table, size_t num_mcvs = 100,
                      size_t num_buckets = 10000);

  std::string name() const override { return "Postgres"; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override;

  const ColumnSynopsis& synopsis(size_t col) const { return columns_[col]; }

 private:
  std::vector<ColumnSynopsis> columns_;
};

}  // namespace naru
