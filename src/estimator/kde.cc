#include "estimator/kde.h"

#include <algorithm>
#include <cmath>

namespace naru {

namespace {

// Standard normal CDF.
double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

// Mass the kernel centered at x with bandwidth h places on [lo-.5, hi+.5].
double IntervalMass(double x, double h, double lo, double hi) {
  return NormalCdf((hi + 0.5 - x) / h) - NormalCdf((lo - 0.5 - x) / h);
}

}  // namespace

KdeEstimator::KdeEstimator(const Table& table, size_t sample_points,
                           uint64_t seed, std::string name)
    : name_(std::move(name)), dims_(table.num_columns()) {
  m_ = std::min(sample_points, table.num_rows());
  NARU_CHECK(m_ > 0);
  Rng rng(seed);
  std::vector<size_t> indices(table.num_rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  for (size_t i = 0; i < m_; ++i) {
    const size_t j = i + rng.UniformInt(indices.size() - i);
    std::swap(indices[i], indices[j]);
  }
  points_.resize(m_ * dims_);
  for (size_t i = 0; i < m_; ++i) {
    for (size_t c = 0; c < dims_; ++c) {
      points_[i * dims_ + c] =
          static_cast<float>(table.column(c).code(indices[i]));
    }
  }
  // Scott's rule: h_j = sigma_j * m^(-1/(d+4)).
  bandwidth_.resize(dims_);
  const double factor =
      std::pow(static_cast<double>(m_),
               -1.0 / (static_cast<double>(dims_) + 4.0));
  for (size_t c = 0; c < dims_; ++c) {
    double mean = 0;
    for (size_t i = 0; i < m_; ++i) mean += points_[i * dims_ + c];
    mean /= static_cast<double>(m_);
    double var = 0;
    for (size_t i = 0; i < m_; ++i) {
      const double d = points_[i * dims_ + c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(std::max<size_t>(m_ - 1, 1));
    bandwidth_[c] = std::max(std::sqrt(var) * factor, 0.3);
  }
}

KdeEstimator KdeEstimator::FromBudget(const Table& table, size_t budget_bytes,
                                      uint64_t seed, std::string name) {
  const size_t bytes_per_point = table.num_columns() * sizeof(float);
  const size_t points = std::max<size_t>(budget_bytes / bytes_per_point, 16);
  return KdeEstimator(table, points, seed, std::move(name));
}

double KdeEstimator::EstimateSelectivity(const Query& query) {
  double total = 0;
  for (size_t i = 0; i < m_; ++i) {
    const float* point = points_.data() + i * dims_;
    double mass = 1.0;
    for (size_t c = 0; c < dims_ && mass > 0; ++c) {
      const ValueSet& region = query.region(c);
      if (region.IsAll()) continue;
      const double x = point[c];
      const double h = bandwidth_[c];
      double dim_mass = 0;
      switch (region.kind()) {
        case ValueSet::Kind::kAll:
          dim_mass = 1.0;
          break;
        case ValueSet::Kind::kInterval:
          dim_mass = IntervalMass(x, h, static_cast<double>(region.lo()),
                                  static_cast<double>(region.hi()));
          break;
        case ValueSet::Kind::kSet: {
          // Exact per-code mass for small sets; interval approximation
          // scaled by density for very large ones (e.g. !=).
          const auto& codes = region.codes();
          if (codes.size() <= 64) {
            for (int32_t v : codes) {
              dim_mass += IntervalMass(x, h, v, v);
            }
          } else {
            const double lo = codes.front();
            const double hi = codes.back();
            const double coverage =
                static_cast<double>(codes.size()) / (hi - lo + 1.0);
            dim_mass = IntervalMass(x, h, lo, hi) * coverage;
          }
          break;
        }
      }
      mass *= std::clamp(dim_mass, 0.0, 1.0);
    }
    total += mass;
  }
  return total / static_cast<double>(m_);
}

void KdeSupervisedTune(KdeEstimator* kde, const std::vector<Query>& queries,
                       const std::vector<double>& true_selectivities,
                       int rounds) {
  NARU_CHECK(queries.size() == true_selectivities.size());
  if (queries.empty()) return;
  auto objective = [&]() {
    double loss = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const double est =
          std::max(kde->EstimateSelectivity(queries[i]), 1e-12);
      const double truth = std::max(true_selectivities[i], 1e-12);
      const double d = std::log(est) - std::log(truth);
      loss += d * d;
    }
    return loss;
  };

  const double factors[] = {0.25, 0.5, 1.0, 2.0, 4.0};
  auto& bw = kde->bandwidth();
  for (int round = 0; round < rounds; ++round) {
    for (size_t c = 0; c < bw.size(); ++c) {
      const double original = bw[c];
      double best_factor = 1.0;
      double best_loss = std::numeric_limits<double>::infinity();
      for (double f : factors) {
        bw[c] = original * f;
        const double loss = objective();
        if (loss < best_loss) {
          best_loss = loss;
          best_factor = f;
        }
      }
      bw[c] = original * best_factor;
    }
  }
}

}  // namespace naru
