#include "estimator/indep.h"

namespace naru {

IndepEstimator::IndepEstimator(const Table& table)
    : num_rows_(table.num_rows()) {
  prefix_.resize(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    std::vector<int64_t> counts(col.DomainSize(), 0);
    for (size_t r = 0; r < col.num_rows(); ++r) {
      ++counts[static_cast<size_t>(col.code(r))];
    }
    prefix_[c].assign(col.DomainSize() + 1, 0);
    for (size_t v = 0; v < counts.size(); ++v) {
      prefix_[c][v + 1] = prefix_[c][v] + counts[v];
    }
  }
}

double IndepEstimator::EstimateSelectivity(const Query& query) {
  double sel = 1.0;
  for (size_t c = 0; c < query.num_columns(); ++c) {
    const ValueSet& region = query.region(c);
    if (region.IsAll()) continue;
    const auto& prefix = prefix_[c];
    int64_t rows = 0;
    switch (region.kind()) {
      case ValueSet::Kind::kAll:
        break;
      case ValueSet::Kind::kInterval:
        if (region.hi() >= region.lo()) {
          rows = prefix[static_cast<size_t>(region.hi()) + 1] -
                 prefix[static_cast<size_t>(region.lo())];
        }
        break;
      case ValueSet::Kind::kSet:
        for (int32_t code : region.codes()) {
          rows += prefix[static_cast<size_t>(code) + 1] -
                  prefix[static_cast<size_t>(code)];
        }
        break;
    }
    sel *= static_cast<double>(rows) / static_cast<double>(num_rows_);
    if (sel == 0.0) return 0.0;
  }
  return sel;
}

size_t IndepEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& p : prefix_) bytes += p.size() * sizeof(int64_t);
  return bytes;
}

}  // namespace naru
