// KDE baselines (Table 2): Gaussian product-kernel density estimation over
// dictionary codes (Heimel et al. style).
//
// The estimator keeps m sample points; a range query's selectivity is the
// sample average of the per-dimension Gaussian CDF mass over the query
// hyper-rectangle (product kernels factorize across dimensions):
//   sel ≈ (1/m) Σ_k Π_j [Φ((hi_j + .5 - x_kj)/h_j) - Φ((lo_j - .5 - x_kj)/h_j)].
// Bandwidths default to Scott's rule; KdeSupervisedTune optimizes per-
// dimension bandwidth multipliers against training-query feedback
// (the paper's KDE-superv), which is what makes KDE usable on discrete,
// high-dimensional data.
#pragma once

#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"
#include "query/query.h"
#include "util/random.h"

namespace naru {

class KdeEstimator : public Estimator {
 public:
  KdeEstimator(const Table& table, size_t sample_points, uint64_t seed,
               std::string name = "KDE");

  static KdeEstimator FromBudget(const Table& table, size_t budget_bytes,
                                 uint64_t seed, std::string name = "KDE");

  std::string name() const override { return name_; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override {
    return points_.size() * sizeof(float) + bandwidth_.size() * sizeof(double);
  }

  /// Per-dimension bandwidths (Scott's rule at construction).
  std::vector<double>& bandwidth() { return bandwidth_; }

 private:
  std::string name_;
  size_t m_ = 0;      // sample points
  size_t dims_ = 0;
  std::vector<float> points_;  // row-major (m x dims) code coordinates
  std::vector<double> bandwidth_;
};

/// Tunes `kde`'s bandwidths by coordinate descent over multiplicative
/// factors, minimizing mean squared log q-error on (queries, true
/// selectivities). This is the query-feedback step distinguishing
/// KDE-superv from plain KDE.
void KdeSupervisedTune(KdeEstimator* kde, const std::vector<Query>& queries,
                       const std::vector<double>& true_selectivities,
                       int rounds = 2);

}  // namespace naru
