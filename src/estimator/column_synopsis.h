// Classical single-column synopsis: most-common values + equi-depth
// histogram (the machinery behind Postgres' pg_stats and similar
// commercial 1D statistics).
//
// The synopsis answers "what fraction of rows fall in this ValueSet"
// using (a) exact frequencies for the tracked MCVs and (b) a uniformity
// assumption across the remaining distinct values inside each equi-depth
// bucket. Postgres1D combines per-column answers with the attribute value
// independence assumption; Dbms1 combines them with exponential backoff.
#pragma once

#include <cstdint>
#include <vector>

#include "data/table_stats.h"
#include "query/value_set.h"

namespace naru {

class ColumnSynopsis {
 public:
  /// Builds from exact marginal counts. `num_mcvs` most common values are
  /// tracked exactly; the rest go into `num_buckets` equi-depth buckets.
  ColumnSynopsis(const ColumnStats& stats, size_t num_rows, size_t num_mcvs,
                 size_t num_buckets);

  /// Estimated fraction of rows with value in `set`.
  double EstimateFraction(const ValueSet& set) const;

  /// Number of distinct values observed (for Dbms1's distinct-count math).
  size_t distinct() const { return distinct_; }

  size_t SizeBytes() const;

 private:
  struct Mcv {
    int32_t code;
    double fraction;
  };
  struct Bucket {
    int32_t lo;            // inclusive code bound
    int32_t hi;            // inclusive code bound
    double fraction;       // share of total rows in this bucket
    int64_t distinct;      // distinct non-MCV codes inside
  };

  double McvMass(const ValueSet& set) const;
  double BucketMass(const ValueSet& set) const;

  std::vector<Mcv> mcvs_;        // sorted by code
  std::vector<Bucket> buckets_;  // sorted by lo
  size_t distinct_ = 0;
  size_t domain_ = 0;
};

}  // namespace naru
