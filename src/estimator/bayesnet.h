// Bayesian-network baseline: Chow-Liu tree + materialized CPTs (§2.1, §7).
//
// Probabilistic Relational Models [Getoor et al. 2001] factor the joint
// through a Bayes net with materialized conditional probability tables.
// This baseline learns the classic tractable instance of that family — the
// Chow-Liu maximum-mutual-information spanning tree — and answers
// conjunctive range queries two ways:
//   1. exactly, via leaf-to-root message passing over the tree (each node
//      contributes one |A_parent| x |A_child| sweep), and
//   2. through the ConditionalModel interface (topological order), which
//      lets the SAME progressive sampler that queries Naru models run over
//      a classical graphical model — used by ablations and as a
//      cross-check that sampler estimates converge to the exact answer.
//
// The storage/precision tradeoff the paper describes for PRMs is explicit
// here: CPT bytes grow with |A_p| * |A_v| (dense tables), and accuracy is
// limited by the tree's conditional-independence assumptions — exactly the
// failure mode Naru's assumption-free factorization removes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/conditional_model.h"
#include "data/table.h"
#include "estimator/estimator.h"
#include "query/query.h"

namespace naru {

struct BayesNetConfig {
  /// Laplace smoothing pseudo-count added to every CPT cell.
  double laplace_alpha = 1.0;
  /// Rows used for mutual-information estimation (0 = all rows). CPT
  /// counting always uses all rows.
  size_t mi_sample_rows = 200000;
  uint64_t seed = 101;
};

/// A Chow-Liu tree over the table's columns, usable both as an Estimator
/// (exact tree inference) and as a ConditionalModel (progressive sampling).
class BayesNet : public ConditionalModel {
 public:
  BayesNet(const Table& table, BayesNetConfig config = {});

  /// Exact P(∧_i X_i ∈ R_i) under the tree model, via message passing.
  double ExactSelectivity(const Query& query) const;

  /// Parent of node v in the learned tree (-1 for the root).
  const std::vector<int>& parents() const { return parents_; }
  /// Nodes in parents-before-children order (= model positions).
  const std::vector<size_t>& topo_order() const { return topo_; }
  /// Dense CPT bytes (the synopsis size charged to the budget).
  size_t SizeBytes() const { return size_bytes_; }

  // --- ConditionalModel (model position = topological index) ---
  size_t num_columns() const override { return domains_.size(); }
  size_t DomainSize(size_t pos) const override {
    return domains_[topo_[pos]];
  }
  size_t TableColumnOf(size_t pos) const override { return topo_[pos]; }
  void ConditionalDist(const IntMatrix& samples, size_t pos,
                       Matrix* probs) override;
  void LogProbRows(const IntMatrix& tuples,
                   std::vector<double>* out_nats) override;

 private:
  /// Mutual information I(X_a; X_b) in nats from empirical pair counts.
  double PairMutualInformation(const Table& table, size_t a, size_t b,
                               size_t row_limit) const;
  void LearnStructure(const Table& table);
  void FitCpts(const Table& table);

  BayesNetConfig config_;
  std::vector<size_t> domains_;          // table order
  std::vector<int> parents_;             // table order; -1 = root
  std::vector<size_t> topo_;             // model position -> table column
  std::vector<size_t> pos_of_;           // table column -> model position
  std::vector<Matrix> cpts_;             // [v]: (|A_parent| x |A_v|); root 1 x |A_v|
  size_t size_bytes_ = 0;
};

/// Estimator facade over BayesNet's exact tree inference (Table 2-style
/// baseline rows; an extension beyond the paper's evaluated set).
class BayesNetEstimator : public Estimator {
 public:
  BayesNetEstimator(const Table& table, BayesNetConfig config = {})
      : net_(std::make_unique<BayesNet>(table, config)) {}

  std::string name() const override { return "BayesNet"; }
  double EstimateSelectivity(const Query& query) override {
    return net_->ExactSelectivity(query);
  }
  size_t SizeBytes() const override { return net_->SizeBytes(); }

  BayesNet* net() { return net_.get(); }

 private:
  std::unique_ptr<BayesNet> net_;
};

}  // namespace naru
