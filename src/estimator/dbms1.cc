#include "estimator/dbms1.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace naru {

namespace {
uint64_t PairKey(size_t a, size_t b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}
}  // namespace

Dbms1Estimator::Dbms1Estimator(const Table& table, size_t num_mcvs,
                               size_t num_buckets)
    : num_rows_(table.num_rows()) {
  const TableStats stats = TableStats::Compute(table);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    columns_.emplace_back(stats.column(c), table.num_rows(), num_mcvs,
                          num_buckets);
    distinct_.push_back(stats.column(c).distinct);
  }
  // Inter-column unique value counts: distinct (a, b) code pairs.
  const size_t n = table.num_columns();
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      std::unordered_set<uint64_t> pairs;
      pairs.reserve(1024);
      const Column& ca = table.column(a);
      const Column& cb = table.column(b);
      for (size_t r = 0; r < table.num_rows(); ++r) {
        pairs.insert((static_cast<uint64_t>(
                          static_cast<uint32_t>(ca.code(r)))
                      << 32) |
                     static_cast<uint32_t>(cb.code(r)));
      }
      pair_distinct_[PairKey(a, b)] = static_cast<int64_t>(pairs.size());
    }
  }
}

double Dbms1Estimator::PairIndependenceFactor(size_t a, size_t b) const {
  if (a > b) std::swap(a, b);
  const auto it = pair_distinct_.find(PairKey(a, b));
  if (it == pair_distinct_.end()) return 1.0;
  const double expected = std::min<double>(
      static_cast<double>(num_rows_),
      static_cast<double>(distinct_[a]) * static_cast<double>(distinct_[b]));
  if (expected <= 0) return 1.0;
  return std::clamp(static_cast<double>(it->second) / expected, 0.0, 1.0);
}

double Dbms1Estimator::EstimateSelectivity(const Query& query) {
  // Per-column estimates for the filtered columns.
  std::vector<std::pair<double, size_t>> sels;  // (selectivity, column)
  for (size_t c = 0; c < query.num_columns(); ++c) {
    const ValueSet& region = query.region(c);
    if (region.IsAll()) continue;
    sels.emplace_back(columns_[c].EstimateFraction(region), c);
  }
  if (sels.empty()) return 1.0;
  std::sort(sels.begin(), sels.end());
  if (sels[0].first == 0.0) return 0.0;

  // Exponential backoff over the four most selective predicates. The
  // backoff base exponent halves per predicate; the observed pairwise
  // correlation of the two leading columns scales how much of the second
  // predicate is counted (fully correlated pairs contribute nothing new).
  double sel = sels[0].first;
  double exponent = 0.5;
  for (size_t i = 1; i < sels.size() && i < 4; ++i) {
    double e = exponent;
    if (i == 1) {
      e *= PairIndependenceFactor(sels[0].second, sels[1].second) + 0.5;
      e = std::min(e, 1.0);
    }
    sel *= std::pow(sels[i].first, e);
    exponent *= 0.5;
  }
  return sel;
}

size_t Dbms1Estimator::SizeBytes() const {
  size_t bytes = pair_distinct_.size() * (sizeof(uint64_t) + sizeof(int64_t));
  for (const auto& c : columns_) bytes += c.SizeBytes();
  return bytes;
}

}  // namespace naru
