#include "estimator/column_synopsis.h"

#include <algorithm>
#include <numeric>

namespace naru {

ColumnSynopsis::ColumnSynopsis(const ColumnStats& stats, size_t num_rows,
                               size_t num_mcvs, size_t num_buckets) {
  NARU_CHECK(num_rows > 0);
  domain_ = stats.counts.size();
  distinct_ = stats.distinct;
  const double inv_n = 1.0 / static_cast<double>(num_rows);

  // Pick the top-`num_mcvs` codes by count.
  std::vector<int32_t> codes;
  codes.reserve(domain_);
  for (size_t v = 0; v < domain_; ++v) {
    if (stats.counts[v] > 0) codes.push_back(static_cast<int32_t>(v));
  }
  const size_t k = std::min(num_mcvs, codes.size());
  std::partial_sort(codes.begin(), codes.begin() + static_cast<long>(k),
                    codes.end(), [&](int32_t a, int32_t b) {
                      return stats.counts[static_cast<size_t>(a)] >
                             stats.counts[static_cast<size_t>(b)];
                    });
  std::vector<bool> is_mcv(domain_, false);
  for (size_t i = 0; i < k; ++i) {
    is_mcv[static_cast<size_t>(codes[i])] = true;
    mcvs_.push_back({codes[i],
                     static_cast<double>(
                         stats.counts[static_cast<size_t>(codes[i])]) *
                         inv_n});
  }
  std::sort(mcvs_.begin(), mcvs_.end(),
            [](const Mcv& a, const Mcv& b) { return a.code < b.code; });

  // Equi-depth buckets over the remaining mass.
  int64_t rest_rows = 0;
  for (size_t v = 0; v < domain_; ++v) {
    if (!is_mcv[v]) rest_rows += stats.counts[v];
  }
  if (rest_rows > 0 && num_buckets > 0) {
    const int64_t per_bucket =
        std::max<int64_t>(1, rest_rows / static_cast<int64_t>(num_buckets));
    Bucket cur{/*lo=*/-1, /*hi=*/-1, /*fraction=*/0, /*distinct=*/0};
    int64_t cur_rows = 0;
    for (size_t v = 0; v < domain_; ++v) {
      if (is_mcv[v] || stats.counts[v] == 0) continue;
      if (cur.lo < 0) cur.lo = static_cast<int32_t>(v);
      cur.hi = static_cast<int32_t>(v);
      cur_rows += stats.counts[v];
      ++cur.distinct;
      if (cur_rows >= per_bucket) {
        cur.fraction = static_cast<double>(cur_rows) * inv_n;
        buckets_.push_back(cur);
        cur = Bucket{-1, -1, 0, 0};
        cur_rows = 0;
      }
    }
    if (cur.lo >= 0) {
      cur.fraction = static_cast<double>(cur_rows) * inv_n;
      buckets_.push_back(cur);
    }
  }
}

double ColumnSynopsis::McvMass(const ValueSet& set) const {
  double mass = 0;
  for (const auto& m : mcvs_) {
    if (set.Contains(m.code)) mass += m.fraction;
  }
  return mass;
}

double ColumnSynopsis::BucketMass(const ValueSet& set) const {
  double mass = 0;
  for (const auto& b : buckets_) {
    if (b.distinct <= 0) continue;
    // Distinct codes inside the bucket are assumed uniformly frequent and
    // uniformly spread over [lo, hi]; estimate the overlapped share.
    double overlap;
    switch (set.kind()) {
      case ValueSet::Kind::kAll:
        overlap = 1.0;
        break;
      case ValueSet::Kind::kInterval: {
        const int64_t lo = std::max<int64_t>(set.lo(), b.lo);
        const int64_t hi = std::min<int64_t>(set.hi(), b.hi);
        if (hi < lo) {
          overlap = 0;
        } else {
          overlap = static_cast<double>(hi - lo + 1) /
                    static_cast<double>(b.hi - b.lo + 1);
        }
        break;
      }
      case ValueSet::Kind::kSet: {
        // Count member codes falling in [lo, hi].
        const auto& codes = set.codes();
        const auto first = std::lower_bound(codes.begin(), codes.end(), b.lo);
        const auto last = std::upper_bound(codes.begin(), codes.end(), b.hi);
        overlap = static_cast<double>(last - first) /
                  static_cast<double>(b.hi - b.lo + 1);
        break;
      }
    }
    mass += b.fraction * std::min(overlap, 1.0);
  }
  return mass;
}

double ColumnSynopsis::EstimateFraction(const ValueSet& set) const {
  if (set.IsAll()) return 1.0;
  if (set.Count() == 0) return 0.0;
  const double mass = McvMass(set) + BucketMass(set);
  return std::clamp(mass, 0.0, 1.0);
}

size_t ColumnSynopsis::SizeBytes() const {
  return mcvs_.size() * sizeof(Mcv) + buckets_.size() * sizeof(Bucket);
}

}  // namespace naru
