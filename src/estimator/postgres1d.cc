#include "estimator/postgres1d.h"

namespace naru {

Postgres1dEstimator::Postgres1dEstimator(const Table& table, size_t num_mcvs,
                                         size_t num_buckets) {
  const TableStats stats = TableStats::Compute(table);
  columns_.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    columns_.emplace_back(stats.column(c), table.num_rows(), num_mcvs,
                          num_buckets);
  }
}

double Postgres1dEstimator::EstimateSelectivity(const Query& query) {
  double sel = 1.0;
  for (size_t c = 0; c < query.num_columns(); ++c) {
    const ValueSet& region = query.region(c);
    if (region.IsAll()) continue;
    sel *= columns_[c].EstimateFraction(region);
    if (sel == 0.0) return 0.0;
  }
  return sel;
}

size_t Postgres1dEstimator::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c.SizeBytes();
  return bytes;
}

}  // namespace naru
