// Hist baseline (Table 2): dense N-dimensional equal-width histogram.
//
// Per-column bin counts are grown greedily (largest bins-per-code deficit
// first) until the dense cell array would exceed the storage budget.
// Queries sum the overlapping cells, scaling boundary cells by the assumed
// uniform within-bin code coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "estimator/estimator.h"

namespace naru {

class HistNdEstimator : public Estimator {
 public:
  /// Builds a histogram whose dense cell array fits in `budget_bytes`.
  HistNdEstimator(const Table& table, size_t budget_bytes);

  std::string name() const override { return "Hist"; }
  double EstimateSelectivity(const Query& query) override;
  size_t SizeBytes() const override {
    return cells_.size() * sizeof(float) + bins_.size() * sizeof(size_t);
  }

  const std::vector<size_t>& bins_per_column() const { return bins_; }

 private:
  size_t BinOf(size_t col, int32_t code) const {
    return static_cast<size_t>(code) * bins_[col] / domains_[col];
  }

  std::vector<size_t> domains_;
  std::vector<size_t> bins_;     // bins per column
  std::vector<size_t> strides_;  // mixed-radix strides
  std::vector<float> cells_;     // fraction of rows per cell
};

}  // namespace naru
