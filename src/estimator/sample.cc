#include "estimator/sample.h"

#include <algorithm>

namespace naru {

SampleEstimator::SampleEstimator(const Table& table, size_t sample_rows,
                                 uint64_t seed)
    : cols_(table.num_columns()) {
  rows_ = std::min(sample_rows, table.num_rows());
  NARU_CHECK(rows_ > 0);
  // Partial Fisher-Yates over row indices for a uniform sample without
  // replacement.
  std::vector<size_t> indices(table.num_rows());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Rng rng(seed);
  for (size_t i = 0; i < rows_; ++i) {
    const size_t j = i + rng.UniformInt(indices.size() - i);
    std::swap(indices[i], indices[j]);
  }
  codes_.resize(rows_ * cols_);
  for (size_t i = 0; i < rows_; ++i) {
    table.GetRowCodes(indices[i], codes_.data() + i * cols_);
  }
}

SampleEstimator SampleEstimator::FromBudget(const Table& table,
                                            size_t budget_bytes,
                                            uint64_t seed) {
  const size_t bytes_per_row = table.num_columns() * sizeof(int32_t);
  const size_t rows = std::max<size_t>(1, budget_bytes / bytes_per_row);
  return SampleEstimator(table, rows, seed);
}

double SampleEstimator::EstimateSelectivity(const Query& query) {
  size_t hits = 0;
  for (size_t i = 0; i < rows_; ++i) {
    const int32_t* row = codes_.data() + i * cols_;
    bool match = true;
    for (size_t c = 0; c < cols_; ++c) {
      const ValueSet& region = query.region(c);
      if (!region.IsAll() && !region.Contains(row[c])) {
        match = false;
        break;
      }
    }
    if (match) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(rows_);
}

}  // namespace naru
