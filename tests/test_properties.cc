// Parameterized property-based test sweeps over the library's invariants:
// GEMM algebra on random shapes, ValueSet algebra, MADE autoregressiveness
// and normalization across architectures/encodings, sampler consistency
// with enumeration, estimator bounds, and q-error metric laws.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/enumerator.h"
#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/oracle_model.h"
#include "core/percolumn.h"
#include "core/sampler.h"
#include "nn/adam.h"
#include "data/datasets.h"
#include "estimator/dbms1.h"
#include "estimator/hist_nd.h"
#include "estimator/indep.h"
#include "estimator/kde.h"
#include "estimator/postgres1d.h"
#include "estimator/sample.h"
#include "query/executor.h"
#include "query/metrics.h"
#include "query/workload.h"
#include "tensor/gemm.h"

namespace naru {
namespace {

// ---------------------------------------------------------------------------
// GEMM identities over random shapes: (A B)^T == B^T A^T, computed through
// the three kernel variants.
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, TransposeIdentity) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 73 + k * 17 + n));
  Matrix a(m, k);
  Matrix b(k, n);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Gaussian());
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.Gaussian());
  }
  Matrix ab;
  GemmNN(a, b, &ab);  // (m x n)

  // C2 = A * (B^T)^T via GemmNT with bt = transpose(b).
  Matrix bt(n, k);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < n; ++j) bt.At(j, i) = b.At(i, j);
  }
  Matrix c2;
  GemmNT(a, bt, &c2);
  // C3 = (A^T)^T * B via GemmTN with at = transpose(a).
  Matrix at(k, m);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) at.At(j, i) = a.At(i, j);
  }
  Matrix c3;
  GemmTN(at, b, &c3);

  for (size_t i = 0; i < ab.size(); ++i) {
    EXPECT_NEAR(ab.data()[i], c2.data()[i], 1e-3);
    EXPECT_NEAR(ab.data()[i], c3.data()[i], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(17, 1, 9), std::make_tuple(8, 8, 8),
                      std::make_tuple(33, 65, 17),
                      std::make_tuple(100, 3, 51)));

// ---------------------------------------------------------------------------
// ValueSet algebra laws under random construction.
class ValueSetLawTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr size_t kDomain = 24;

  ValueSet RandomSet(Rng* rng) {
    switch (rng->UniformInt(4)) {
      case 0:
        return ValueSet::All(kDomain);
      case 1:
        return ValueSet::Empty(kDomain);
      case 2: {
        const int64_t a = rng->UniformRange(0, kDomain - 1);
        const int64_t b = rng->UniformRange(0, kDomain - 1);
        return ValueSet::Interval(kDomain, std::min(a, b), std::max(a, b));
      }
      default: {
        std::vector<int32_t> codes;
        for (size_t v = 0; v < kDomain; ++v) {
          if (rng->UniformDouble() < 0.4) {
            codes.push_back(static_cast<int32_t>(v));
          }
        }
        return ValueSet::Set(kDomain, std::move(codes));
      }
    }
  }
};

TEST_P(ValueSetLawTest, IntersectionLaws) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const ValueSet a = RandomSet(&rng);
    const ValueSet b = RandomSet(&rng);
    const ValueSet ab = a.Intersect(b);
    const ValueSet ba = b.Intersect(a);
    // Commutativity and idempotence.
    EXPECT_EQ(ab.Count(), ba.Count());
    EXPECT_EQ(a.Intersect(a).Count(), a.Count());
    // Identity and annihilator.
    EXPECT_EQ(a.Intersect(ValueSet::All(kDomain)).Count(), a.Count());
    EXPECT_EQ(a.Intersect(ValueSet::Empty(kDomain)).Count(), 0u);
    // Monotonicity.
    EXPECT_LE(ab.Count(), std::min(a.Count(), b.Count()));
    // NthCode enumerates exactly the members.
    for (size_t k = 0; k < ab.Count(); ++k) {
      EXPECT_TRUE(ab.Contains(ab.NthCode(k)));
      EXPECT_TRUE(a.Contains(ab.NthCode(k)));
      EXPECT_TRUE(b.Contains(ab.NthCode(k)));
    }
  }
}

TEST_P(ValueSetLawTest, MaskProbsConservesContainedMass) {
  Rng rng(GetParam() ^ 0xABC);
  for (int trial = 0; trial < 50; ++trial) {
    const ValueSet s = RandomSet(&rng);
    std::vector<float> probs(kDomain);
    double contained = 0;
    for (size_t v = 0; v < kDomain; ++v) {
      probs[v] = static_cast<float>(rng.UniformDouble());
      if (s.Contains(static_cast<int32_t>(v))) contained += probs[v];
    }
    const double mass = s.MaskProbs(probs.data());
    EXPECT_NEAR(mass, contained, 1e-5);
    for (size_t v = 0; v < kDomain; ++v) {
      if (!s.Contains(static_cast<int32_t>(v))) {
        EXPECT_EQ(probs[v], 0.0f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueSetLawTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// q-error laws.
class QErrorLawTest : public ::testing::TestWithParam<double> {};

TEST_P(QErrorLawTest, Laws) {
  const double x = GetParam();
  // Reflexivity, symmetry, scale behaviour, floor.
  EXPECT_DOUBLE_EQ(QError(x, x), 1.0);
  EXPECT_DOUBLE_EQ(QError(x, 2 * x), QError(2 * x, x));
  EXPECT_GE(QError(x, 3 * x), QError(x, 2 * x));
  EXPECT_DOUBLE_EQ(QError(0, x), std::max(x, 1.0));
}

INSTANTIATE_TEST_SUITE_P(Values, QErrorLawTest,
                         ::testing::Values(1.0, 2.5, 100.0, 1e6));

// ---------------------------------------------------------------------------
// MADE invariants across architectures and encodings.
struct MadeVariant {
  std::vector<size_t> hidden;
  size_t onehot_threshold;
  bool reuse;
  bool binary;
};

class MadeInvariantTest : public ::testing::TestWithParam<int> {
 protected:
  static MadeVariant Variant(int idx) {
    switch (idx) {
      case 0:
        return {{32, 32}, 64, true, false};       // all one-hot (small doms)
      case 1:
        return {{16}, 4, true, false};            // embeddings + reuse
      case 2:
        return {{16, 16, 16}, 4, false, false};   // embeddings, FC heads
      case 3:
        return {{24, 24}, 4, false, true};        // binary inputs
      default:
        return {{}, 64, false, false};            // linear MADE (no hidden)
    }
  }
};

TEST_P(MadeInvariantTest, AutoregressiveAndNormalized) {
  const MadeVariant v = Variant(GetParam());
  const std::vector<size_t> domains = {6, 17, 3, 9};
  MadeModel::Config cfg;
  cfg.hidden_sizes = v.hidden;
  cfg.encoder.onehot_threshold = v.onehot_threshold;
  cfg.encoder.embed_dim = 8;
  cfg.encoder.binary_for_large = v.binary;
  cfg.embedding_reuse = v.reuse;
  cfg.seed = static_cast<uint64_t>(GetParam() + 1);
  MadeModel model(domains, cfg);

  IntMatrix base(1, domains.size());
  Rng rng(3);
  for (size_t c = 0; c < domains.size(); ++c) {
    base.At(0, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
  }

  // Normalization of every conditional.
  for (size_t c = 0; c < domains.size(); ++c) {
    Matrix probs;
    model.ConditionalDist(base, c, &probs);
    double sum = 0;
    for (size_t vv = 0; vv < domains[c]; ++vv) sum += probs.At(0, vv);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }

  // Autoregressiveness: perturb column j, outputs i <= j unchanged.
  for (size_t j = 0; j < domains.size(); ++j) {
    IntMatrix mutated = base;
    mutated.At(0, j) =
        (base.At(0, j) + 1) % static_cast<int32_t>(domains[j]);
    for (size_t i = 0; i <= j; ++i) {
      Matrix pa;
      Matrix pb;
      model.ConditionalDist(base, i, &pa);
      model.ConditionalDist(mutated, i, &pb);
      for (size_t vv = 0; vv < domains[i]; ++vv) {
        ASSERT_NEAR(pa.At(0, vv), pb.At(0, vv), 1e-6)
            << "variant " << GetParam() << " col " << j << " output " << i;
      }
    }
  }

  // Joint normalization by full enumeration (small joint: 6*17*3*9).
  double total = 0;
  IntMatrix tuple(1, domains.size());
  std::vector<double> lp;
  for (size_t a = 0; a < domains[0]; ++a) {
    for (size_t b = 0; b < domains[1]; ++b) {
      for (size_t c = 0; c < domains[2]; ++c) {
        for (size_t d = 0; d < domains[3]; ++d) {
          tuple.At(0, 0) = static_cast<int32_t>(a);
          tuple.At(0, 1) = static_cast<int32_t>(b);
          tuple.At(0, 2) = static_cast<int32_t>(c);
          tuple.At(0, 3) = static_cast<int32_t>(d);
          model.LogProbRows(tuple, &lp);
          total += std::exp(lp[0]);
        }
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Variants, MadeInvariantTest,
                         ::testing::Values(0, 1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Architecture A obeys the same invariants.
TEST(PerColumnModel, AutoregressiveAndNormalized) {
  const std::vector<size_t> domains = {5, 12, 4};
  PerColumnModel::Config cfg;
  cfg.hidden_sizes = {16, 16};
  cfg.encoder.onehot_threshold = 8;
  cfg.encoder.embed_dim = 6;
  cfg.seed = 7;
  PerColumnModel model(domains, cfg);

  IntMatrix base(1, 3);
  base.At(0, 0) = 2;
  base.At(0, 1) = 11;
  base.At(0, 2) = 1;
  for (size_t c = 0; c < 3; ++c) {
    Matrix probs;
    model.ConditionalDist(base, c, &probs);
    double sum = 0;
    for (size_t v = 0; v < domains[c]; ++v) sum += probs.At(0, v);
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
  // Perturbing column 2 cannot change P(X0) or P(X1 | x0).
  IntMatrix mutated = base;
  mutated.At(0, 2) = 3;
  for (size_t i = 0; i < 2; ++i) {
    Matrix pa;
    Matrix pb;
    model.ConditionalDist(base, i, &pa);
    model.ConditionalDist(mutated, i, &pb);
    for (size_t v = 0; v < domains[i]; ++v) {
      EXPECT_FLOAT_EQ(pa.At(0, v), pb.At(0, v));
    }
  }
}

TEST(PerColumnModel, TrainingReducesNll) {
  Table t = MakeRandomTable(1200, {5, 7, 6}, 21, 1.2);
  PerColumnModel::Config cfg;
  cfg.hidden_sizes = {32, 32};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = 3;
  PerColumnModel model({5, 7, 6}, cfg);
  AdamOptions opts;
  opts.lr = 5e-3;
  Adam adam(model.Parameters(), opts);
  IntMatrix codes(t.num_rows(), 3);
  for (size_t r = 0; r < t.num_rows(); ++r) t.GetRowCodes(r, codes.Row(r));
  const double first = model.ForwardBackward(codes);
  adam.Step();
  double last = first;
  for (int step = 0; step < 60; ++step) {
    last = model.ForwardBackward(codes);
    adam.Step();
  }
  EXPECT_LT(last, first * 0.8);
}

// ---------------------------------------------------------------------------
// Sampler/enumerator agreement across table shapes (both integrate the
// same model joint, so they must coincide up to Monte Carlo noise).
class SamplerEnumAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SamplerEnumAgreementTest, Agree) {
  const auto [seed, cols] = GetParam();
  std::vector<size_t> domains;
  Rng setup(seed);
  for (int c = 0; c < cols; ++c) {
    domains.push_back(3 + setup.UniformInt(6));
  }
  Table t = MakeRandomTable(600, domains, seed + 1);
  OracleModel oracle(&t);

  WorkloadConfig wcfg;
  wcfg.num_queries = 5;
  wcfg.min_filters = 1;
  wcfg.max_filters = static_cast<size_t>(cols);
  wcfg.range_domain_threshold = 4;
  wcfg.seed = seed + 2;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    const double exact = EnumerateSelectivity(&oracle, q);
    ProgressiveSamplerConfig scfg;
    scfg.num_samples = 6000;
    scfg.seed = seed + 3;
    ProgressiveSampler sampler(&oracle, scfg);
    const double sampled = sampler.EstimateSelectivity(q);
    EXPECT_NEAR(sampled, exact, std::max(0.3 * exact, 0.01));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SamplerEnumAgreementTest,
    ::testing::Combine(::testing::Values(11, 22, 33),
                       ::testing::Values(2, 4, 6)));

// ---------------------------------------------------------------------------
// Every estimator returns selectivities in [0, 1] and exact 0/1 where
// mandated, over a shared random workload.
class EstimatorBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorBoundsTest, SelectivitiesInRange) {
  Table t = MakeDmvLike(4000, 91);
  const int which = GetParam();
  std::unique_ptr<Estimator> est;
  std::unique_ptr<OracleModel> oracle;
  switch (which) {
    case 0:
      est = std::make_unique<IndepEstimator>(t);
      break;
    case 1:
      est = std::make_unique<Postgres1dEstimator>(t);
      break;
    case 2:
      est = std::make_unique<Dbms1Estimator>(t);
      break;
    case 3:
      est = std::make_unique<SampleEstimator>(t, 400, 7);
      break;
    case 4:
      est = std::make_unique<KdeEstimator>(t, 400, 7);
      break;
    case 5:
      est = std::make_unique<HistNdEstimator>(t, 1 << 18);
      break;
    default: {
      oracle = std::make_unique<OracleModel>(&t);
      NaruEstimatorConfig ncfg;
      ncfg.num_samples = 200;
      est = std::make_unique<NaruEstimator>(oracle.get(), ncfg, 0);
      break;
    }
  }
  WorkloadConfig wcfg;
  wcfg.num_queries = 25;
  wcfg.seed = 17;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    const double sel = est->EstimateSelectivity(q);
    EXPECT_GE(sel, 0.0) << est->name();
    EXPECT_LE(sel, 1.0 + 1e-9) << est->name();
  }
  // Wildcard-only query: every estimator answers ~1 (float32 accumulators
  // like Hist's cell array leave ~1e-6 of rounding slack).
  Query all(t, {});
  EXPECT_NEAR(est->EstimateSelectivity(all), 1.0, 1e-4) << est->name();
  // Unsatisfiable query: every estimator answers ~0.
  Predicate impossible{0, CompareOp::kLt, 0, 0, {}};
  Query none(t, {impossible});
  EXPECT_NEAR(est->EstimateSelectivity(none), 0.0, 1e-9) << est->name();
}

INSTANTIATE_TEST_SUITE_P(All, EstimatorBoundsTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Inclusion-exclusion consistency on the scan executor itself:
// sel(B) == sel(B ∧ A) + sel(B ∧ ¬A) for random A, B.
class ExecutorInclusionExclusionTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorInclusionExclusionTest, ComplementAdds) {
  const uint64_t seed = GetParam();
  Table t = MakeRandomTable(1500, {9, 13, 7, 5}, seed);
  Rng rng(seed + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t col = rng.UniformInt(4);
    const size_t domain = t.column(col).DomainSize();
    const int64_t pivot =
        rng.UniformRange(0, static_cast<int64_t>(domain) - 1);
    const size_t other = (col + 1 + rng.UniformInt(3)) % 4;
    Predicate base{other, CompareOp::kGe,
                   rng.UniformRange(0, static_cast<int64_t>(
                                           t.column(other).DomainSize()) -
                                           1),
                   0,
                   {}};
    Predicate le{col, CompareOp::kLe, pivot, 0, {}};
    Predicate gt{col, CompareOp::kGt, pivot, 0, {}};
    const int64_t whole = ExecuteCount(t, Query(t, {base}));
    const int64_t lo = ExecuteCount(t, Query(t, {base, le}));
    const int64_t hi = ExecuteCount(t, Query(t, {base, gt}));
    EXPECT_EQ(whole, lo + hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorInclusionExclusionTest,
                         ::testing::Values(5, 6, 7, 8));

}  // namespace
}  // namespace naru
