// Unit + property tests for the query substrate: ValueSet algebra,
// predicate semantics vs brute force, workload generator rules, executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "core/oracle_model.h"
#include "core/sampler.h"
#include "data/datasets.h"
#include "query/executor.h"
#include "query/metrics.h"
#include "query/query.h"
#include "query/value_set.h"
#include "query/workload.h"
#include "util/random.h"

namespace naru {
namespace {

TEST(ValueSet, BasicKinds) {
  ValueSet all = ValueSet::All(10);
  EXPECT_TRUE(all.IsAll());
  EXPECT_EQ(all.Count(), 10u);
  EXPECT_TRUE(all.Contains(9));
  EXPECT_FALSE(all.Contains(10));

  ValueSet iv = ValueSet::Interval(10, 3, 6);
  EXPECT_EQ(iv.Count(), 4u);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(6));
  EXPECT_FALSE(iv.Contains(7));
  EXPECT_EQ(iv.NthCode(1), 4);

  ValueSet set = ValueSet::Set(10, {7, 2, 2, 5});
  EXPECT_EQ(set.Count(), 3u);
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.NthCode(0), 2);
  EXPECT_EQ(set.NthCode(2), 7);

  EXPECT_TRUE(ValueSet::Empty(10).IsEmpty());
}

TEST(ValueSet, FullIntervalCollapsesToAll) {
  EXPECT_TRUE(ValueSet::Interval(5, 0, 4).IsAll());
  EXPECT_TRUE(ValueSet::Interval(5, -3, 99).IsAll());
  // A Set naming all codes collapses too.
  EXPECT_TRUE(ValueSet::Set(3, {0, 1, 2}).IsAll());
}

TEST(ValueSet, IntersectMatchesBruteForce) {
  Rng rng(31);
  const size_t domain = 20;
  for (int trial = 0; trial < 200; ++trial) {
    auto random_set = [&]() -> ValueSet {
      switch (rng.UniformInt(3)) {
        case 0:
          return ValueSet::All(domain);
        case 1: {
          const int64_t a = rng.UniformRange(0, 19);
          const int64_t b = rng.UniformRange(0, 19);
          return ValueSet::Interval(domain, std::min(a, b), std::max(a, b));
        }
        default: {
          std::vector<int32_t> codes;
          for (size_t v = 0; v < domain; ++v) {
            if (rng.UniformDouble() < 0.3) {
              codes.push_back(static_cast<int32_t>(v));
            }
          }
          return ValueSet::Set(domain, std::move(codes));
        }
      }
    };
    const ValueSet a = random_set();
    const ValueSet b = random_set();
    const ValueSet c = a.Intersect(b);
    size_t count = 0;
    for (size_t v = 0; v < domain; ++v) {
      const bool expected = a.Contains(static_cast<int32_t>(v)) &&
                            b.Contains(static_cast<int32_t>(v));
      EXPECT_EQ(c.Contains(static_cast<int32_t>(v)), expected);
      if (expected) ++count;
    }
    EXPECT_EQ(c.Count(), count);
  }
}

TEST(ValueSet, MaskProbsZeroesOutside) {
  ValueSet iv = ValueSet::Interval(5, 1, 3);
  float probs[5] = {0.1f, 0.2f, 0.3f, 0.2f, 0.2f};
  const double mass = iv.MaskProbs(probs);
  EXPECT_NEAR(mass, 0.7, 1e-6);
  EXPECT_FLOAT_EQ(probs[0], 0.0f);
  EXPECT_FLOAT_EQ(probs[4], 0.0f);
  EXPECT_FLOAT_EQ(probs[2], 0.3f);
}

TEST(Predicate, OperatorSemantics) {
  const size_t domain = 7;
  struct Case {
    CompareOp op;
    int64_t lit;
    std::vector<int32_t> expect;
  };
  const std::vector<Case> cases = {
      {CompareOp::kEq, 3, {3}},
      {CompareOp::kNeq, 3, {0, 1, 2, 4, 5, 6}},
      {CompareOp::kLt, 3, {0, 1, 2}},
      {CompareOp::kLe, 3, {0, 1, 2, 3}},
      {CompareOp::kGt, 3, {4, 5, 6}},
      {CompareOp::kGe, 3, {3, 4, 5, 6}},
  };
  for (const auto& c : cases) {
    Predicate p;
    p.op = c.op;
    p.literal = c.lit;
    const ValueSet s = p.ToValueSet(domain);
    for (size_t v = 0; v < domain; ++v) {
      const bool want = std::find(c.expect.begin(), c.expect.end(),
                                  static_cast<int32_t>(v)) != c.expect.end();
      EXPECT_EQ(s.Contains(static_cast<int32_t>(v)), want)
          << CompareOpToString(c.op) << " value " << v;
    }
  }
  Predicate in;
  in.op = CompareOp::kIn;
  in.in_list = {1, 5};
  EXPECT_EQ(in.ToValueSet(domain).Count(), 2u);

  Predicate between;
  between.op = CompareOp::kBetween;
  between.literal = 2;
  between.literal2 = 4;
  EXPECT_EQ(between.ToValueSet(domain).Count(), 3u);
}

TEST(Query, RegionsIntersectMultiplePredicates) {
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 1, 2, 3, 4, 5, 6, 7})
                .AddIntColumn("b", {0, 0, 0, 0, 1, 1, 1, 1})
                .Build();
  Predicate p1{/*column=*/0, CompareOp::kGe, /*literal=*/2, 0, {}};
  Predicate p2{/*column=*/0, CompareOp::kLe, /*literal=*/5, 0, {}};
  Query q(t, {p1, p2});
  EXPECT_EQ(q.region(0).Count(), 4u);
  EXPECT_TRUE(q.region(1).IsAll());
  EXPECT_EQ(q.NumFilteredColumns(), 1u);
  EXPECT_EQ(q.LastFilteredColumn(), 0);
  EXPECT_NEAR(q.Log10RegionSize(), std::log10(4.0 * 2.0), 1e-12);
}

TEST(Executor, MatchesBruteForce) {
  Table t = MakeRandomTable(3000, {4, 9, 17, 30}, 5);
  WorkloadConfig cfg;
  cfg.num_queries = 50;
  cfg.min_filters = 1;
  cfg.max_filters = 4;
  cfg.seed = 77;
  const auto queries = GenerateWorkload(t, cfg);
  for (const auto& q : queries) {
    int64_t brute = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      bool match = true;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        if (!q.region(c).Contains(t.column(c).code(r))) {
          match = false;
          break;
        }
      }
      if (match) ++brute;
    }
    EXPECT_EQ(ExecuteCount(t, q), brute);
  }
}

TEST(Executor, InclusionExclusion) {
  // sel(rest) = sel(rest AND a<=k) + sel(rest AND a>k): execution counts
  // must be exactly additive over complementary predicates.
  Table t = MakeRandomTable(2000, {8, 12, 20}, 9);
  Predicate base{/*column=*/1, CompareOp::kGe, /*literal=*/3, 0, {}};
  Predicate left{/*column=*/0, CompareOp::kLe, /*literal=*/4, 0, {}};
  Predicate right{/*column=*/0, CompareOp::kGt, /*literal=*/4, 0, {}};
  const int64_t whole = ExecuteCount(t, Query(t, {base}));
  const int64_t a = ExecuteCount(t, Query(t, {base, left}));
  const int64_t b = ExecuteCount(t, Query(t, {base, right}));
  EXPECT_EQ(whole, a + b);
}

TEST(Executor, BitmapMatchesPrefixRows) {
  Table t = MakeRandomTable(500, {5, 7}, 3);
  Predicate p{/*column=*/0, CompareOp::kEq, /*literal=*/1, 0, {}};
  Query q(t, {p});
  const auto bitmap = ExecuteBitmap(t, q, 100);
  ASSERT_EQ(bitmap.size(), 100u);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(bitmap[r] != 0, t.column(0).code(r) == 1);
  }
}

TEST(Workload, RespectsFilterCountAndOperatorRules) {
  Table t = MakeDmvLike(2000, 21);
  WorkloadConfig cfg;
  cfg.num_queries = 200;
  cfg.min_filters = 5;
  cfg.max_filters = 11;
  cfg.seed = 5;
  const auto queries = GenerateWorkload(t, cfg);
  ASSERT_EQ(queries.size(), 200u);
  for (const auto& q : queries) {
    const size_t f = q.predicates().size();
    EXPECT_GE(f, 5u);
    EXPECT_LE(f, 11u);
    std::set<size_t> cols;
    for (const auto& p : q.predicates()) {
      cols.insert(p.column);
      const size_t domain = t.column(p.column).DomainSize();
      if (domain < cfg.range_domain_threshold) {
        EXPECT_EQ(p.op, CompareOp::kEq);
      } else {
        EXPECT_TRUE(p.op == CompareOp::kEq || p.op == CompareOp::kLe ||
                    p.op == CompareOp::kGe);
      }
      // In-distribution literals come from the data, hence are valid codes.
      EXPECT_GE(p.literal, 0);
      EXPECT_LT(p.literal, static_cast<int64_t>(domain));
    }
    EXPECT_EQ(cols.size(), f) << "filters must be on distinct columns";
  }
}

TEST(Workload, InDistributionQueriesHaveHits) {
  Table t = MakeDmvLike(2000, 23);
  WorkloadConfig cfg;
  cfg.num_queries = 100;
  cfg.min_filters = 2;
  cfg.max_filters = 3;
  cfg.seed = 9;
  const auto queries = GenerateWorkload(t, cfg);
  size_t nonzero = 0;
  for (const auto& q : queries) {
    if (ExecuteCount(t, q) > 0) ++nonzero;
  }
  // Literals are drawn from a data tuple, so most small-filter queries hit.
  EXPECT_GT(nonzero, 90u);
}

TEST(Workload, OutOfDistributionMostlyEmpty) {
  Table t = MakeDmvLike(2000, 25);
  WorkloadConfig cfg;
  cfg.num_queries = 100;
  cfg.min_filters = 8;
  cfg.max_filters = 11;
  cfg.out_of_distribution = true;
  cfg.seed = 13;
  const auto queries = GenerateWorkload(t, cfg);
  size_t zero = 0;
  for (const auto& q : queries) {
    if (ExecuteCount(t, q) == 0) ++zero;
  }
  // The paper reports ~98% true-zero for OOD workloads.
  EXPECT_GT(zero, 80u);
}

TEST(Workload, InOperatorModeProducesSetRegions) {
  Table t = MakeDmvLike(2000, 31);
  WorkloadConfig cfg;
  cfg.num_queries = 120;
  cfg.in_probability = 1.0;  // every range-eligible column gets IN
  cfg.max_in_list = 4;
  cfg.seed = 7;
  const auto queries = GenerateWorkload(t, cfg);
  size_t in_preds = 0;
  for (const auto& q : queries) {
    for (const auto& p : q.predicates()) {
      const size_t domain = t.column(p.column).DomainSize();
      if (domain >= cfg.range_domain_threshold) {
        EXPECT_EQ(p.op, CompareOp::kIn);
        EXPECT_GE(p.in_list.size(), 1u);
        EXPECT_LE(p.in_list.size(), 1 + cfg.max_in_list);
        ++in_preds;
        // The anchor literal is always a member, so the query region
        // contains the generating tuple's value.
        EXPECT_TRUE(q.region(p.column).Contains(
            static_cast<int32_t>(p.literal)));
      }
    }
  }
  EXPECT_GT(in_preds, 100u);
}

TEST(Workload, SharedPrefixShapingRepeatsLeadingLiterals) {
  Table t = MakeDmvLike(2000, 37);
  WorkloadConfig cfg;
  cfg.num_queries = 300;
  cfg.min_filters = 1;
  cfg.max_filters = 4;
  cfg.shared_prefix_columns = 2;
  cfg.shared_prefix_fraction = 0.5;
  cfg.shared_prefix_templates = 2;
  cfg.seed = 17;
  const auto queries = GenerateWorkload(t, cfg);
  ASSERT_EQ(queries.size(), 300u);

  // Tally the literal pairs of queries that equality-constrain both leading
  // columns; shaped queries all draw theirs from the pre-picked template
  // tuples, so the same pairs recur across the trace.
  std::map<std::pair<int64_t, int64_t>, size_t> pair_counts;
  for (const auto& q : queries) {
    int64_t lit0 = -1;
    int64_t lit1 = -1;
    std::set<size_t> cols;
    for (const auto& p : q.predicates()) {
      cols.insert(p.column);
      if (p.column == 0 && p.op == CompareOp::kEq) lit0 = p.literal;
      if (p.column == 1 && p.op == CompareOp::kEq) lit1 = p.literal;
    }
    EXPECT_EQ(cols.size(), q.predicates().size())
        << "filters must stay on distinct columns";
    EXPECT_LE(q.predicates().size(),
              cfg.shared_prefix_columns + cfg.max_filters);
    if (lit0 >= 0 && lit1 >= 0) ++pair_counts[{lit0, lit1}];
  }
  size_t prefixed = 0;
  size_t heavy_pairs = 0;
  for (const auto& entry : pair_counts) {
    prefixed += entry.second;
    if (entry.second >= 10) ++heavy_pairs;
  }
  // ~half the trace is shaped (fraction 0.5), and the shaped half reuses at
  // most `shared_prefix_templates` distinct literal prefixes — exactly the
  // repetition the plan trie forks on.
  EXPECT_GE(prefixed, 100u);
  EXPECT_GE(heavy_pairs, 1u);
  EXPECT_LE(heavy_pairs, cfg.shared_prefix_templates);
}

TEST(Workload, SharedPrefixKnobsAreInertWhenFractionIsZero) {
  // The shaping draws are gated on the knob, so switching it off must
  // reproduce the unshaped workload bit for bit (same RNG stream).
  Table t = MakeDmvLike(1500, 41);
  WorkloadConfig base;
  base.num_queries = 60;
  base.min_filters = 2;
  base.max_filters = 5;
  base.seed = 23;
  WorkloadConfig gated = base;
  gated.shared_prefix_columns = 3;
  gated.shared_prefix_templates = 4;
  gated.shared_prefix_fraction = 0.0;
  const auto a = GenerateWorkload(t, base);
  const auto b = GenerateWorkload(t, gated);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(t), b[i].ToString(t));
  }
}

TEST(Workload, InQueriesAgreeAcrossExecutorAndSampler) {
  // End-to-end Set-region coverage: oracle + progressive sampling must
  // track exact execution on IN-heavy workloads.
  Table t = MakeRandomTable(1500, {12, 15, 20}, 33);
  WorkloadConfig cfg;
  cfg.num_queries = 12;
  cfg.min_filters = 1;
  cfg.max_filters = 3;
  cfg.range_domain_threshold = 10;
  cfg.in_probability = 0.7;
  cfg.seed = 11;
  const auto queries = GenerateWorkload(t, cfg);
  OracleModel oracle(&t);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 4000;
  ProgressiveSampler sampler(&oracle, scfg);
  for (const auto& q : queries) {
    const double truth = ExecuteSelectivity(t, q);
    EXPECT_NEAR(sampler.EstimateSelectivity(q), truth,
                std::max(0.35 * truth, 0.02))
        << q.ToString(t);
  }
}

TEST(Metrics, QErrorProperties) {
  EXPECT_DOUBLE_EQ(QError(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(QError(10, 1000), 100.0);
  EXPECT_DOUBLE_EQ(QError(1000, 10), 100.0);
  // Floor at 1 guards zero cardinalities.
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 50), 50.0);
  // Symmetry.
  for (double a : {1.0, 7.0, 300.0}) {
    for (double b : {2.0, 90.0}) {
      EXPECT_DOUBLE_EQ(QError(a, b), QError(b, a));
    }
  }
}

TEST(Metrics, Buckets) {
  EXPECT_EQ(BucketForSelectivity(0.5), SelectivityBucket::kHigh);
  EXPECT_EQ(BucketForSelectivity(0.01), SelectivityBucket::kMedium);
  EXPECT_EQ(BucketForSelectivity(0.001), SelectivityBucket::kLow);
}

TEST(Metrics, ErrorReportQuantiles) {
  ErrorReport report("X");
  // 10 low-selectivity queries with errors 1..10.
  for (int i = 1; i <= 10; ++i) {
    report.Add(/*est=*/i, /*actual=*/1, /*sel=*/0.001);
  }
  const auto q = report.Bucket(SelectivityBucket::kLow);
  EXPECT_EQ(q.count, 10u);
  EXPECT_DOUBLE_EQ(q.max, 10.0);
  EXPECT_NEAR(q.median, 5.5, 1e-9);
  EXPECT_EQ(report.Bucket(SelectivityBucket::kHigh).count, 0u);
}

}  // namespace
}  // namespace naru
