// Unit tests for the data substrate: dictionaries, tables, stats,
// generators, CSV import.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "data/csv_table.h"
#include "data/datasets.h"
#include "data/table.h"
#include "data/table_stats.h"
#include "util/csv.h"

namespace naru {
namespace {

TEST(Dictionary, SortedCodesPreserveOrder) {
  std::vector<Value> values = {Value(int64_t{30}), Value(int64_t{10}),
                               Value(int64_t{20}), Value(int64_t{10})};
  Dictionary d = Dictionary::Build(values);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.CodeFor(Value(int64_t{10})).ValueOrDie(), 0);
  EXPECT_EQ(d.CodeFor(Value(int64_t{20})).ValueOrDie(), 1);
  EXPECT_EQ(d.CodeFor(Value(int64_t{30})).ValueOrDie(), 2);
  EXPECT_EQ(d.ValueFor(2).AsInt(), 30);
}

TEST(Dictionary, StringOrderAndLowerBound) {
  std::vector<Value> values = {Value(std::string("pear")),
                               Value(std::string("apple")),
                               Value(std::string("mango"))};
  Dictionary d = Dictionary::Build(values);
  EXPECT_EQ(d.CodeFor(Value(std::string("apple"))).ValueOrDie(), 0);
  EXPECT_EQ(d.LowerBoundCode(Value(std::string("banana"))), 1);
  EXPECT_EQ(d.LowerBoundCode(Value(std::string("zzz"))), 3);
  EXPECT_FALSE(d.CodeFor(Value(std::string("kiwi"))).ok());
}

TEST(Dictionary, PlaceholderAbsorbsUnseen) {
  std::vector<Value> values = {Value(int64_t{1}), Value(int64_t{2})};
  Dictionary d = Dictionary::Build(values, /*with_placeholder=*/true);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.CodeFor(Value(int64_t{99})).ValueOrDie(),
            d.placeholder_code());
}

TEST(Table, BuilderAndAccessors) {
  TableBuilder b("t");
  b.AddIntColumn("a", {3, 1, 2, 1});
  b.AddIntColumn("b", {0, 0, 1, 1});
  Table t = b.Build();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.ColumnIndex("b").ValueOrDie(), 1u);
  EXPECT_FALSE(t.ColumnIndex("zz").ok());
  // Codes follow value order: a values {1,2,3} -> codes {0,1,2}.
  EXPECT_EQ(t.column(0).code(0), 2);
  EXPECT_EQ(t.column(0).code(1), 0);
  int32_t row[2];
  t.GetRowCodes(2, row);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[1], 1);
}

TEST(Table, SliceKeepsDictionaries) {
  TableBuilder b("t");
  b.AddIntColumn("a", {5, 6, 7, 8});
  b.AddIntColumn("b", {1, 1, 2, 2});
  Table t = b.Build();
  Table s = t.Slice(1, 3, 2);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.num_columns(), 2u);
  // Same dictionary: value 6 still encodes to code 1.
  EXPECT_EQ(s.column(0).code(0), 1);
  EXPECT_EQ(s.column(0).dict().size(), 4u);
}

TEST(Table, AppendRowsReencodes) {
  TableBuilder b1("t1");
  b1.AddIntColumn("a", {1, 2, 3});
  Table t1 = b1.Build();

  TableBuilder b2("t2");
  b2.AddIntColumn("a", {3, 2});
  Table t2 = b2.Build();

  ASSERT_TRUE(t1.AppendRows(t2).ok());
  EXPECT_EQ(t1.num_rows(), 5u);
  // Appended 3 encodes under t1's dictionary as code 2.
  EXPECT_EQ(t1.column(0).code(3), 2);
  EXPECT_EQ(t1.column(0).code(4), 1);
}

TEST(Table, AppendUnseenValueFailsWithoutPlaceholder) {
  TableBuilder b1("t1");
  b1.AddIntColumn("a", {1, 2});
  Table t1 = b1.Build();
  TableBuilder b2("t2");
  b2.AddIntColumn("a", {9});
  Table t2 = b2.Build();
  EXPECT_FALSE(t1.AppendRows(t2).ok());
}

TEST(Table, JointSpaceSize) {
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 1, 0, 1})   // domain 2
                .AddIntColumn("b", {0, 1, 2, 0})   // domain 3
                .Build();
  EXPECT_NEAR(t.Log10JointSpaceSize(), std::log10(2.0 * 3.0), 1e-12);
}

TEST(TableStats, MarginalCounts) {
  Table t = TableBuilder("t")
                .AddIntColumn("a", {1, 1, 2, 3})
                .Build();
  TableStats stats = TableStats::Compute(t);
  EXPECT_EQ(stats.column(0).counts[0], 2);  // value 1
  EXPECT_EQ(stats.column(0).counts[1], 1);
  EXPECT_EQ(stats.column(0).distinct, 3u);
}

TEST(TableStats, JointEntropyUniform) {
  // 4 distinct equally-frequent tuples -> H = 2 bits.
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 0, 1, 1})
                .AddIntColumn("b", {0, 1, 0, 1})
                .Build();
  EXPECT_NEAR(TableStats::JointEntropyBits(t), 2.0, 1e-9);
}

TEST(TableStats, JointEntropySkewed) {
  // p = {3/4, 1/4}: H = 0.811278 bits.
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 0, 0, 1})
                .Build();
  EXPECT_NEAR(TableStats::JointEntropyBits(t), 0.811278, 1e-5);
}

TEST(Datasets, DmvLikeShape) {
  Table t = MakeDmvLike(2000, 7);
  EXPECT_EQ(t.num_rows(), 2000u);
  EXPECT_EQ(t.num_columns(), 11u);
  // Domain sizes are bounded by the spec'd sizes.
  EXPECT_LE(t.column(0).DomainSize(), 4u);
  EXPECT_LE(t.column(6).DomainSize(), 2101u);
  EXPECT_EQ(t.column(8).DomainSize(), 2u);
  // Deterministic in the seed.
  Table t2 = MakeDmvLike(2000, 7);
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(t.column(3).code(r), t2.column(3).code(r));
  }
  // Correlated: entropy far below the independent upper bound.
  const double joint_bits = TableStats::JointEntropyBits(t);
  EXPECT_LT(joint_bits, 11.0 + std::log2(2000.0));
}

TEST(Datasets, DmvPartitionsDrift) {
  Table t = MakeDmvLike(5000, 3, /*num_partitions=*/5);
  // Dates in the first partition live in the first window.
  const size_t date_col = 6;
  int64_t max_first = 0;
  for (size_t r = 0; r < 1000; ++r) {
    max_first = std::max<int64_t>(
        max_first,
        t.column(date_col).dict().ValueFor(t.column(date_col).code(r))
            .AsInt());
  }
  EXPECT_LT(max_first, 2101 / 5);
}

TEST(Datasets, ConvivaALikeShape) {
  Table t = MakeConvivaALike(3000, 11);
  EXPECT_EQ(t.num_columns(), 15u);
  EXPECT_LE(t.column(0).DomainSize(), 2u);
  // Numeric columns spread into large domains.
  EXPECT_GT(t.column(6).DomainSize(), 100u);
}

TEST(Datasets, ConvivaBLikeUniqueRows) {
  Table t = MakeConvivaBLike(1000, 13, 20);
  EXPECT_EQ(t.num_columns(), 20u);
  // The session-id column makes all rows unique: H(P) == log2(N).
  EXPECT_NEAR(TableStats::JointEntropyBits(t), std::log2(1000.0), 1e-9);
}

TEST(CsvTable, LoadsWithTypeInference) {
  const std::string path = testing::TempDir() + "/naru_table.csv";
  CsvContents contents;
  contents.header = {"id", "score", "city"};
  contents.rows = {{"2", "0.5", "SF"},
                   {"1", "1.5", "Portland"},
                   {"2", "2.5", "SF"}};
  ASSERT_TRUE(WriteCsvFile(path, contents).ok());
  auto result = LoadTableFromCsv(path, "t");
  ASSERT_TRUE(result.ok());
  const Table& t = result.ValueOrDie();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.column(0).dict().value_type(), ValueType::kInt);
  EXPECT_EQ(t.column(1).dict().value_type(), ValueType::kDouble);
  EXPECT_EQ(t.column(2).dict().value_type(), ValueType::kString);
  // "Portland" < "SF" so Portland is code 0.
  EXPECT_EQ(t.column(2).code(1), 0);
  std::remove(path.c_str());
}

TEST(CsvTable, ColumnSubsetSelection) {
  const std::string path = testing::TempDir() + "/naru_table2.csv";
  CsvContents contents;
  contents.header = {"a", "b", "c"};
  contents.rows = {{"1", "2", "3"}};
  ASSERT_TRUE(WriteCsvFile(path, contents).ok());
  auto result = LoadTableFromCsv(path, "t", {"c", "a"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().num_columns(), 2u);
  EXPECT_EQ(result.ValueOrDie().column(0).name(), "c");
  EXPECT_FALSE(LoadTableFromCsv(path, "t", {"zz"}).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naru
