// Tests for permuted-order models and the multi-order ensemble: permutation
// plumbing, normalization, sampler/enumerator agreement through a permuted
// model, trained end-to-end accuracy, and ensemble semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ensemble.h"
#include "core/enumerator.h"
#include "core/made.h"
#include "core/ordered_model.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "query/executor.h"

namespace naru {
namespace {

MadeModel::Config SmallConfig(uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {32, 32};
  cfg.encoder.onehot_threshold = 16;
  cfg.encoder.embed_dim = 4;
  cfg.seed = seed;
  return cfg;
}

TEST(OrderedModel, RandomOrderIsPermutation) {
  Rng rng(3);
  for (size_t n : {1u, 2u, 7u, 30u}) {
    const auto order = OrderedModel::RandomOrder(n, &rng);
    ASSERT_EQ(order.size(), n);
    std::vector<uint8_t> seen(n, 0);
    for (size_t c : order) {
      ASSERT_LT(c, n);
      ASSERT_FALSE(seen[c]);
      seen[c] = 1;
    }
  }
}

TEST(OrderedModel, IdentityOrderMatchesInner) {
  const std::vector<size_t> domains = {4, 6, 5};
  auto inner = std::make_unique<MadeModel>(domains, SmallConfig(7));
  MadeModel reference(domains, SmallConfig(7));  // same seed => same weights

  std::vector<size_t> order = {0, 1, 2};
  OrderedModel wrapped(std::move(inner), order);

  IntMatrix tuple(2, 3);
  tuple.At(0, 0) = 1;
  tuple.At(0, 1) = 5;
  tuple.At(0, 2) = 2;
  tuple.At(1, 0) = 3;
  tuple.At(1, 1) = 0;
  tuple.At(1, 2) = 4;
  std::vector<double> lp_wrapped, lp_ref;
  wrapped.LogProbRows(tuple, &lp_wrapped);
  reference.LogProbRows(tuple, &lp_ref);
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(lp_wrapped[r], lp_ref[r], 1e-6);
  }
  EXPECT_EQ(wrapped.TableColumnOf(1), 1u);
}

TEST(OrderedModel, PermutedJointSumsToOne) {
  // Enumerate the full joint in TABLE order through the wrapper; the
  // permuted chain-rule factorization must still normalize.
  const std::vector<size_t> table_domains = {3, 4, 2};
  const std::vector<size_t> order = {2, 0, 1};
  auto inner = std::make_unique<MadeModel>(
      OrderedModel::PermuteDomains(table_domains, order), SmallConfig(11));
  OrderedModel model(std::move(inner), order);

  double total = 0;
  IntMatrix tuple(1, 3);
  std::vector<double> lp;
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      for (size_t c = 0; c < 2; ++c) {
        tuple.At(0, 0) = static_cast<int32_t>(a);
        tuple.At(0, 1) = static_cast<int32_t>(b);
        tuple.At(0, 2) = static_cast<int32_t>(c);
        model.LogProbRows(tuple, &lp);
        total += std::exp(lp[0]);
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(OrderedModel, DomainSizeFollowsModelPositions) {
  const std::vector<size_t> table_domains = {3, 9, 5};
  const std::vector<size_t> order = {1, 2, 0};
  auto inner = std::make_unique<MadeModel>(
      OrderedModel::PermuteDomains(table_domains, order), SmallConfig(13));
  OrderedModel model(std::move(inner), order);
  EXPECT_EQ(model.DomainSize(0), 9u);
  EXPECT_EQ(model.DomainSize(1), 5u);
  EXPECT_EQ(model.DomainSize(2), 3u);
  EXPECT_EQ(model.TableColumnOf(0), 1u);
  EXPECT_EQ(model.TableColumnOf(2), 0u);
}

TEST(OrderedModel, FirstPositionFilterIsExact) {
  // When the only filtered table column sits at model position 0, every
  // progressive path carries the identical weight P(X ∈ R): the sampler
  // must agree with exact enumeration to floating-point accuracy even on
  // an untrained model. This pins down the region -> position mapping.
  Table t = MakeRandomTable(200, {5, 7, 4}, 17, /*skew=*/0.8);
  const std::vector<size_t> table_domains = {
      t.column(0).DomainSize(), t.column(1).DomainSize(),
      t.column(2).DomainSize()};
  const std::vector<size_t> order = {2, 0, 1};  // table col 2 first
  auto inner = std::make_unique<MadeModel>(
      OrderedModel::PermuteDomains(table_domains, order), SmallConfig(19));
  OrderedModel model(std::move(inner), order);

  // Filter ONLY table column 2 (= model position 0).
  Query q(t, {{/*column=*/2, CompareOp::kLe, 1}});
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 16;  // exactness => tiny budget suffices
  ProgressiveSampler sampler(&model, scfg);
  const double sampled = sampler.EstimateSelectivity(q);
  const double enumerated = EnumerateSelectivity(&model, q);
  EXPECT_NEAR(sampled, enumerated, 1e-6);
}

TEST(OrderedModel, SamplerMatchesEnumeratorOnPermutedModel) {
  // Multi-column range query on an untrained permuted model: progressive
  // sampling (many paths) must converge to the exact enumerated mass.
  Table t = MakeRandomTable(300, {4, 5, 3}, 23, /*skew=*/0.5);
  const std::vector<size_t> table_domains = {
      t.column(0).DomainSize(), t.column(1).DomainSize(),
      t.column(2).DomainSize()};
  const std::vector<size_t> order = {1, 2, 0};
  auto inner = std::make_unique<MadeModel>(
      OrderedModel::PermuteDomains(table_domains, order), SmallConfig(29));
  OrderedModel model(std::move(inner), order);

  Query q(t, {{/*column=*/0, CompareOp::kGe, 1},
              {/*column=*/2, CompareOp::kLe, 1}});
  const double exact = EnumerateSelectivity(&model, q);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 20000;
  ProgressiveSampler sampler(&model, scfg);
  const double sampled = sampler.EstimateSelectivity(q);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(sampled / exact, 1.0, 0.1);
}

TEST(OrderedModel, TrainedPermutedModelEstimatesAccurately) {
  Table t = MakeRandomTable(2000, {8, 10, 6}, 31, /*skew=*/1.0);
  const std::vector<size_t> table_domains = {
      t.column(0).DomainSize(), t.column(1).DomainSize(),
      t.column(2).DomainSize()};
  const std::vector<size_t> order = {2, 1, 0};
  MadeModel::Config mcfg = SmallConfig(37);
  mcfg.hidden_sizes = {64, 64};
  auto inner = std::make_unique<MadeModel>(
      OrderedModel::PermuteDomains(table_domains, order), mcfg);
  OrderedModel model(std::move(inner), order);

  TrainerConfig tcfg;
  tcfg.epochs = 20;
  tcfg.batch_size = 128;
  tcfg.lr = 5e-3;
  Trainer(&model, tcfg).Train(t);

  NaruEstimatorConfig ecfg;
  ecfg.num_samples = 1000;
  ecfg.enumeration_threshold = 0;
  NaruEstimator est(&model, ecfg, 0, "NaruPerm");
  Query q(t, {{/*column=*/0, CompareOp::kLe,
               static_cast<int64_t>(t.column(0).DomainSize() / 2)},
              {/*column=*/1, CompareOp::kGe, 2}});
  const double truth = ExecuteSelectivity(t, q);
  const double got = est.EstimateSelectivity(q);
  ASSERT_GT(truth, 0.0);
  const double qerr =
      std::max(got, truth) / std::max(1e-9, std::min(got, truth));
  EXPECT_LT(qerr, 2.0) << "estimate " << got << " truth " << truth;
}

TEST(MultiOrderEnsemble, MeanOfMembersAndMetadata) {
  Table t = MakeRandomTable(600, {6, 5, 4}, 41, /*skew=*/0.8);
  MultiOrderConfig cfg;
  cfg.num_orders = 3;
  cfg.model = SmallConfig(43);
  cfg.trainer.epochs = 3;
  cfg.trainer.batch_size = 128;
  cfg.estimator.num_samples = 200;
  cfg.estimator.enumeration_threshold = 0;
  MultiOrderEnsemble ens(t, cfg);

  EXPECT_EQ(ens.num_members(), 3u);
  // Member 0 keeps the natural order.
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(ens.member_order(0)[i], i);
  EXPECT_GT(ens.SizeBytes(), 0u);

  Query q(t, {{/*column=*/1, CompareOp::kLe, 2}});
  double mean = 0;
  for (size_t k = 0; k < 3; ++k) mean += ens.MemberEstimate(k, q);
  mean /= 3;
  // Member estimators are freshly-seeded per call? No: sampler draws fresh
  // randomness each call, so re-estimating gives a new MC draw. Compare
  // with a tolerance that accommodates two independent 200-path draws.
  const double combined = ens.EstimateSelectivity(q);
  EXPECT_NEAR(combined, mean, 0.15);
  EXPECT_GT(combined, 0.0);
  EXPECT_LE(combined, 1.0 + 1e-9);
}

TEST(MultiOrderEnsemble, AccurateOnCorrelatedTable) {
  Table t = MakeRandomTable(2000, {8, 8, 8}, 47, /*skew=*/1.1);
  MultiOrderConfig cfg;
  cfg.num_orders = 3;
  cfg.model = SmallConfig(53);
  cfg.model.hidden_sizes = {64, 64};
  cfg.trainer.epochs = 15;
  cfg.trainer.batch_size = 128;
  cfg.trainer.lr = 5e-3;
  cfg.estimator.num_samples = 400;
  cfg.estimator.enumeration_threshold = 0;
  MultiOrderEnsemble ens(t, cfg);

  Query q(t, {{/*column=*/0, CompareOp::kLe, 4},
              {/*column=*/2, CompareOp::kGe, 3}});
  const double truth = ExecuteSelectivity(t, q);
  const double got = ens.EstimateSelectivity(q);
  ASSERT_GT(truth, 0.0);
  const double qerr =
      std::max(got, truth) / std::max(1e-9, std::min(got, truth));
  EXPECT_LT(qerr, 2.0) << "estimate " << got << " truth " << truth;
}

}  // namespace
}  // namespace naru
