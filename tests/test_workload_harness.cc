// Tests for the adversarial workload harness (src/workload) and the perf
// trajectory checker (tools/check_bench_regression.py):
//   - seed determinism: same (table, scenario, sizes, seed) => byte-identical
//     TraceToString — THE reproducibility contract behind bench_adversarial
//     and the checked-in trajectory baselines;
//   - band coverage: every scenario of the default matrix meets its
//     selectivity-band quotas against executed ground truth;
//   - shape sweeps: wildcard-prefix pools actually vary the leading
//     wildcard-run length;
//   - materialization: relative trace deadlines pin correctly to absolute
//     EstimateOptions deadlines;
//   - checker self-test: the regression gate passes an unchanged run and
//     ordinary jitter, and fails an injected 2x latency regression, a
//     throughput collapse, and shrunken row coverage.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "serve/request.h"
#include "workload/adversarial.h"

namespace naru {
namespace {

Table HarnessTable(uint64_t seed) {
  return MakeRandomTable(400, {7, 5, 9, 4}, seed, /*skew=*/1.0);
}

AdversarialScenario BaseScenario() {
  AdversarialScenario sc;
  sc.name = "unit";
  sc.qps = 2000.0;
  return sc;
}

TEST(SelectivityBands, EdgesAndNames) {
  EXPECT_EQ(ClassifySelectivityBand(0.0), 0u);
  EXPECT_EQ(ClassifySelectivityBand(0.001), 1u);
  EXPECT_EQ(ClassifySelectivityBand(0.005), 1u);
  EXPECT_EQ(ClassifySelectivityBand(0.05), 2u);
  EXPECT_EQ(ClassifySelectivityBand(0.5), 3u);
  EXPECT_EQ(ClassifySelectivityBand(1.0), 3u);
  EXPECT_STREQ(SelectivityBandName(0), "zero");
  EXPECT_STREQ(SelectivityBandName(3), "broad");
}

// THE seed-determinism contract: byte-identical traces from identical
// inputs, a different trace from a different seed.
TEST(AdversarialTrace, SeedDeterminismIsByteIdentical) {
  Table table = HarnessTable(71);
  const AdversarialScenario sc = BaseScenario();

  const AdversarialTrace a = GenerateAdversarialTrace(table, sc, 16, 120, 5);
  const AdversarialTrace b = GenerateAdversarialTrace(table, sc, 16, 120, 5);
  const std::string sa = TraceToString(a);
  EXPECT_FALSE(sa.empty());
  EXPECT_NE(sa.find(sc.name), std::string::npos);
  EXPECT_EQ(sa, TraceToString(b));

  const AdversarialTrace c = GenerateAdversarialTrace(table, sc, 16, 120, 6);
  EXPECT_NE(sa, TraceToString(c));

  // Regenerating the table from the same seed reproduces the trace too:
  // determinism holds through the data layer, not just the generator.
  Table table2 = HarnessTable(71);
  const AdversarialTrace d =
      GenerateAdversarialTrace(table2, sc, 16, 120, 5);
  EXPECT_EQ(sa, TraceToString(d));
}

// Every cell of the default matrix meets its declared band quotas against
// EXECUTED ground truth, classifies its pool consistently, and emits a
// structurally sane request stream honoring the scenario's mix knobs.
TEST(AdversarialTrace, MatrixMeetsBandQuotasAndScenarioShape) {
  Table table = HarnessTable(73);
  const size_t pool_size = 20;
  const size_t num_requests = 200;

  for (const AdversarialScenario& sc : AdversarialScenarioMatrix()) {
    SCOPED_TRACE(sc.name);
    const AdversarialTrace trace =
        GenerateAdversarialTrace(table, sc, pool_size, num_requests, 91);

    // Pool: ground truth in range, bands consistent, quotas met.
    ASSERT_GE(trace.pool.size(), pool_size);
    ASSERT_EQ(trace.pool_true_sel.size(), trace.pool.size());
    ASSERT_EQ(trace.pool_band.size(), trace.pool.size());
    std::array<size_t, kNumSelectivityBands> counted = {0, 0, 0, 0};
    for (size_t i = 0; i < trace.pool.size(); ++i) {
      EXPECT_GE(trace.pool_true_sel[i], 0.0);
      EXPECT_LE(trace.pool_true_sel[i], 1.0);
      EXPECT_EQ(trace.pool_band[i],
                ClassifySelectivityBand(trace.pool_true_sel[i]));
      ++counted[trace.pool_band[i]];
    }
    for (size_t b = 0; b < kNumSelectivityBands; ++b) {
      EXPECT_EQ(trace.band_counts[b], counted[b]);
      if (sc.band_quota[b] > 0) {
        EXPECT_GE(trace.band_counts[b], sc.band_quota[b])
            << "band " << SelectivityBandName(b) << " quota unmet";
      }
    }

    // Requests: time-ordered, indices valid, deadline knobs honored.
    ASSERT_EQ(trace.requests.size(), num_requests);
    size_t expired = 0, tight = 0;
    std::array<size_t, 3> by_class = {0, 0, 0};
    double prev_ms = 0.0;
    for (const AdversarialRequest& r : trace.requests) {
      EXPECT_GE(r.arrival_ms, prev_ms) << "arrivals must be nondecreasing";
      prev_ms = r.arrival_ms;
      EXPECT_LT(r.pool_index, trace.pool.size());
      if (r.deadline_ms == 0.0) ++expired;
      if (r.deadline_ms > 0.0) ++tight;
      ++by_class[static_cast<size_t>(r.priority)];
    }
    if (sc.expired_deadline_fraction > 0.0) EXPECT_GT(expired, 0u);
    if (sc.tight_deadline_fraction > 0.0) EXPECT_GT(tight, 0u);
    if (sc.priority_mix == PriorityMixKind::kAllNormal) {
      EXPECT_EQ(by_class[0], 0u);
      EXPECT_EQ(by_class[2], 0u);
    } else {
      // Mixed and inverted both use all three classes; inverted skews
      // high-heavy (flush-order shaped), mixed skews low-heavy.
      EXPECT_GT(by_class[0], 0u);
      EXPECT_GT(by_class[1], 0u);
      EXPECT_GT(by_class[2], 0u);
      if (sc.priority_mix == PriorityMixKind::kInverted) {
        EXPECT_GT(by_class[2], by_class[0]);
      } else {
        EXPECT_GT(by_class[0], by_class[2]);
      }
    }
    if (sc.arrival == ArrivalKind::kInstant) {
      EXPECT_EQ(trace.requests.back().arrival_ms, 0.0);
    } else {
      EXPECT_GT(trace.requests.back().arrival_ms, 0.0);
    }
  }
}

// The wildcard-prefix shape must SWEEP run lengths, not fixate on one.
TEST(AdversarialTrace, WildcardPrefixSweepsRunLengths) {
  Table table = HarnessTable(79);
  AdversarialScenario sc = BaseScenario();
  sc.name = "wildcard_unit";
  sc.shape = PredicateShape::kWildcardPrefix;
  const AdversarialTrace trace =
      GenerateAdversarialTrace(table, sc, 24, 60, 17);
  ASSERT_EQ(trace.pool_wildcard_run.size(), trace.pool.size());
  std::set<size_t> runs(trace.pool_wildcard_run.begin(),
                        trace.pool_wildcard_run.end());
  EXPECT_GE(runs.size(), 2u) << "run lengths must vary across the pool";
  EXPECT_GE(*runs.rbegin(), 1u) << "some pool entry must lead with a run";
}

// Relative trace deadlines pin to absolute EstimateOptions instants at a
// caller-chosen start; everything else is copied through.
TEST(AdversarialTrace, MaterializeRequestPinsRelativeDeadlines) {
  Table table = HarnessTable(83);
  AdversarialScenario sc = BaseScenario();
  sc.expired_deadline_fraction = 0.3;
  sc.tight_deadline_fraction = 0.3;
  sc.priority_mix = PriorityMixKind::kMixed;
  sc.request_samples = 777;
  sc.bypass_cache_fraction = 0.5;
  const AdversarialTrace trace =
      GenerateAdversarialTrace(table, sc, 12, 80, 23);

  const auto start = std::chrono::steady_clock::now();
  bool saw_deadline = false, saw_free = false, saw_bypass = false;
  for (size_t i = 0; i < trace.requests.size(); ++i) {
    const AdversarialRequest& r = trace.requests[i];
    const EstimateRequest req = MaterializeRequest(trace, i, start);
    EXPECT_EQ(req.options.priority, r.priority);
    EXPECT_EQ(req.options.num_samples, sc.request_samples);
    if (r.cache_policy == CachePolicy::kBypass) saw_bypass = true;
    if (r.deadline_ms < 0.0) {
      saw_free = true;
      EXPECT_FALSE(req.options.has_deadline());
    } else {
      saw_deadline = true;
      ASSERT_TRUE(req.options.has_deadline());
      const double off_ms =
          std::chrono::duration<double, std::milli>(req.options.deadline -
                                                    start)
              .count();
      EXPECT_NEAR(off_ms, r.arrival_ms + r.deadline_ms, 1e-5);
    }
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_free);
  EXPECT_TRUE(saw_bypass);
}

// ---- tools/check_bench_regression.py self-test -------------------------

#ifndef NARU_SOURCE_DIR
#define NARU_SOURCE_DIR ".."
#endif

std::string MakeTempDir() {
  char tmpl[] = "/tmp/naru_trajectory_XXXXXX";
  char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// A minimal schema-v2 bench JSON with one latency, one throughput, and
/// one counter metric (plus a second row so coverage loss is testable).
void WriteBenchJson(const std::string& dir, double p99_ms, double qps,
                    bool include_second_row) {
  std::ofstream f(dir + "/BENCH_selftest.json");
  f << "{\n  \"bench\": \"selftest\",\n  \"schema_version\": 2,\n"
    << "  \"simd\": \"none\",\n  \"meta\": {\"host\": \"unit\"},\n"
    << "  \"config\": {},\n  \"rows\": [\n"
    << "    {\"mode\": \"steady\", \"p99_ms\": " << p99_ms
    << ", \"qps\": " << qps << ", \"shed\": 10}";
  if (include_second_row) {
    f << ",\n    {\"mode\": \"burst\", \"p99_ms\": 5.0}";
  }
  f << "\n  ]\n}\n";
}

int RunChecker(const std::string& baseline_dir, const std::string& fresh_dir) {
  const std::string cmd = std::string("python3 ") + NARU_SOURCE_DIR +
                          "/tools/check_bench_regression.py --baseline-dir " +
                          baseline_dir + " --fresh-dir " + fresh_dir +
                          " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(BenchRegressionChecker, PassesCleanAndJitterFailsRealRegressions) {
  if (std::system("python3 -c 'pass' >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
  const std::string baseline = MakeTempDir();
  const std::string fresh = MakeTempDir();
  ASSERT_FALSE(baseline.empty());
  ASSERT_FALSE(fresh.empty());
  WriteBenchJson(baseline, /*p99_ms=*/8.0, /*qps=*/1000.0, true);

  // Identical run: clean.
  WriteBenchJson(fresh, 8.0, 1000.0, true);
  EXPECT_EQ(RunChecker(baseline, fresh), 0);

  // Ordinary noise (1.1x latency, -5% throughput): inside the bands.
  WriteBenchJson(fresh, 8.8, 950.0, true);
  EXPECT_EQ(RunChecker(baseline, fresh), 0);

  // An injected 2x latency regression: gated.
  WriteBenchJson(fresh, 16.0, 1000.0, true);
  EXPECT_EQ(RunChecker(baseline, fresh), 1);

  // A throughput collapse: gated.
  WriteBenchJson(fresh, 8.0, 300.0, true);
  EXPECT_EQ(RunChecker(baseline, fresh), 1);

  // A baseline row missing from the fresh run: coverage shrank, gated.
  WriteBenchJson(fresh, 8.0, 1000.0, false);
  EXPECT_EQ(RunChecker(baseline, fresh), 1);

  // A missing fresh FILE is a failure, not a silent skip.
  EXPECT_NE(RunChecker(baseline, baseline + "/nonexistent"), 0);
}

}  // namespace
}  // namespace naru
