// Tests for the baseline estimators of Table 2.
#include <gtest/gtest.h>

#include <cmath>

#include "data/datasets.h"
#include "estimator/dbms1.h"
#include "estimator/hist_nd.h"
#include "estimator/indep.h"
#include "estimator/kde.h"
#include "estimator/mscn.h"
#include "estimator/postgres1d.h"
#include "estimator/sample.h"
#include "query/executor.h"
#include "query/metrics.h"
#include "query/workload.h"

namespace naru {
namespace {

// An independent two-column table: every estimator that assumes
// independence must be exact here.
Table IndependentTable() {
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    a.push_back(static_cast<int64_t>(rng.UniformInt(8)));
    b.push_back(static_cast<int64_t>(rng.UniformInt(5)));
  }
  return TableBuilder("ind").AddIntColumn("a", a).AddIntColumn("b", b)
      .Build();
}

TEST(Indep, ExactOnIndependentData) {
  Table t = IndependentTable();
  IndepEstimator est(t);
  Predicate p0{/*column=*/0, CompareOp::kLe, /*literal=*/3, 0, {}};
  Predicate p1{/*column=*/1, CompareOp::kEq, /*literal=*/2, 0, {}};
  Query q(t, {p0, p1});
  const double truth = ExecuteSelectivity(t, q);
  EXPECT_NEAR(est.EstimateSelectivity(q), truth, 0.02);
}

TEST(Indep, ExactMarginals) {
  Table t = IndependentTable();
  IndepEstimator est(t);
  // Single-column queries are answered exactly (perfect marginals).
  for (int64_t lit = 0; lit < 8; ++lit) {
    Predicate p{/*column=*/0, CompareOp::kEq, lit, 0, {}};
    Query q(t, {p});
    EXPECT_DOUBLE_EQ(est.EstimateSelectivity(q), ExecuteSelectivity(t, q));
  }
}

TEST(Indep, FailsOnCorrelatedData) {
  // Perfectly correlated columns: b == a.
  std::vector<int64_t> a;
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    a.push_back(static_cast<int64_t>(rng.UniformInt(10)));
  }
  Table t = TableBuilder("corr").AddIntColumn("a", a).AddIntColumn("b", a)
                .Build();
  IndepEstimator est(t);
  Predicate p0{/*column=*/0, CompareOp::kEq, /*literal=*/3, 0, {}};
  Predicate p1{/*column=*/1, CompareOp::kEq, /*literal=*/3, 0, {}};
  Query q(t, {p0, p1});
  const double truth = ExecuteSelectivity(t, q);
  const double est_sel = est.EstimateSelectivity(q);
  // Indep estimates p^2 instead of p: off by ~10x.
  EXPECT_GT(QError(est_sel * t.num_rows(), truth * t.num_rows()), 5.0);
}

TEST(HistNd, ExactWhenBinsResolveDomains) {
  Table t = MakeRandomTable(2000, {4, 5, 3}, 11);
  // Budget large enough for full 4*5*3 = 60-cell resolution.
  HistNdEstimator hist(t, /*budget_bytes=*/1 << 16);
  WorkloadConfig wcfg;
  wcfg.num_queries = 20;
  wcfg.min_filters = 1;
  wcfg.max_filters = 3;
  wcfg.range_domain_threshold = 4;
  wcfg.seed = 2;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    EXPECT_NEAR(hist.EstimateSelectivity(q), ExecuteSelectivity(t, q), 1e-5);
  }
}

TEST(HistNd, StaysWithinBudget) {
  Table t = MakeDmvLike(5000, 3);
  const size_t budget = 64 * 1024;
  HistNdEstimator hist(t, budget);
  EXPECT_LE(hist.SizeBytes(), budget + 1024);
  // Coarse bins: estimates are in [0, 1] and not NaN.
  WorkloadConfig wcfg;
  wcfg.num_queries = 20;
  wcfg.seed = 4;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    const double sel = hist.EstimateSelectivity(q);
    EXPECT_GE(sel, 0.0);
    EXPECT_LE(sel, 1.0);
  }
}

TEST(Sample, ExactWithFullSample) {
  Table t = MakeRandomTable(1000, {6, 7}, 13);
  SampleEstimator est(t, /*sample_rows=*/1000, /*seed=*/1);
  WorkloadConfig wcfg;
  wcfg.num_queries = 20;
  wcfg.min_filters = 1;
  wcfg.max_filters = 2;
  wcfg.seed = 6;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    EXPECT_DOUBLE_EQ(est.EstimateSelectivity(q), ExecuteSelectivity(t, q));
  }
}

TEST(Sample, BudgetSizing) {
  Table t = MakeDmvLike(10000, 5);
  auto est = SampleEstimator::FromBudget(t, /*budget_bytes=*/44 * 1000, 1);
  // 44KB / (11 cols * 4B) = 1000 rows.
  EXPECT_EQ(est.sample_rows(), 1000u);
  EXPECT_LE(est.SizeBytes(), 44u * 1000u);
}

TEST(Sample, MissesRareValues) {
  // A value appearing once in 100K rows is almost surely absent from a
  // small sample -> estimate 0 (the paper's low-selectivity failure mode).
  std::vector<int64_t> a(20000, 0);
  a[777] = 1;
  Table t = TableBuilder("rare").AddIntColumn("a", a).Build();
  SampleEstimator est(t, /*sample_rows=*/100, /*seed=*/3);
  Predicate p{/*column=*/0, CompareOp::kEq, /*literal=*/1, 0, {}};
  Query q(t, {p});
  EXPECT_DOUBLE_EQ(est.EstimateSelectivity(q), 0.0);
}

TEST(Postgres1d, SingleColumnAccuracy) {
  Table t = MakeDmvLike(20000, 17);
  Postgres1dEstimator est(t);
  // Single-column predicates: MCV + histogram should be accurate.
  WorkloadConfig wcfg;
  wcfg.num_queries = 40;
  wcfg.min_filters = 1;
  wcfg.max_filters = 1;
  wcfg.seed = 10;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    const double truth = ExecuteSelectivity(t, q);
    const double est_sel = est.EstimateSelectivity(q);
    EXPECT_LT(QError(est_sel * t.num_rows() + 1, truth * t.num_rows() + 1),
              3.0)
        << q.ToString(t);
  }
}

TEST(Postgres1d, IndependenceCombination) {
  Table t = IndependentTable();
  Postgres1dEstimator est(t);
  Predicate p0{/*column=*/0, CompareOp::kLe, /*literal=*/5, 0, {}};
  Predicate p1{/*column=*/1, CompareOp::kGe, /*literal=*/1, 0, {}};
  Query q(t, {p0, p1});
  EXPECT_NEAR(est.EstimateSelectivity(q), ExecuteSelectivity(t, q), 0.05);
}

TEST(Dbms1, BackoffBeatsAviTailOnSelectiveQueries) {
  // The Table 3 contrast: AVI underestimates correlated conjunctions by
  // orders of magnitude, so on queries with non-trivial true cardinality
  // (where the q-error floor at card=1 cannot mask underestimation)
  // exponential backoff has a much better tail.
  Table t = MakeDmvLike(20000, 19);
  Dbms1Estimator dbms1(t);
  Postgres1dEstimator postgres(t);
  WorkloadConfig wcfg;
  wcfg.num_queries = 300;
  wcfg.min_filters = 3;
  wcfg.max_filters = 7;
  wcfg.seed = 12;
  const auto queries = GenerateWorkload(t, wcfg);
  QuantileSketch dbms1_err;
  QuantileSketch pg_err;
  for (const auto& q : queries) {
    const double truth = ExecuteSelectivity(t, q) * t.num_rows();
    if (truth < 0.001 * t.num_rows()) continue;  // avoid the floor artifact
    dbms1_err.Add(QError(dbms1.EstimateSelectivity(q) * t.num_rows(), truth));
    pg_err.Add(QError(postgres.EstimateSelectivity(q) * t.num_rows(), truth));
  }
  ASSERT_GT(dbms1_err.count(), 20u);
  EXPECT_LT(dbms1_err.Quantile(0.9), pg_err.Quantile(0.9));
}

TEST(Kde, RoughOnSmoothData) {
  Table t = MakeConvivaALike(8000, 21);
  KdeEstimator kde(t, /*sample_points=*/2000, /*seed=*/5);
  // Single range predicate on a large numeric column.
  const int64_t lit =
      static_cast<int64_t>(t.column(6).DomainSize() / 2);
  Predicate p{/*column=*/6, CompareOp::kLe, lit, 0, {}};
  Query q(t, {p});
  const double truth = ExecuteSelectivity(t, q);
  EXPECT_NEAR(kde.EstimateSelectivity(q), truth,
              std::max(0.5 * truth, 0.05));
}

TEST(Kde, SupervisedTuningImproves) {
  Table t = MakeDmvLike(10000, 23);
  KdeEstimator kde(t, 1000, 7, "KDE-superv");
  WorkloadConfig wcfg;
  wcfg.num_queries = 60;
  wcfg.seed = 14;
  const auto queries = GenerateWorkload(t, wcfg);
  std::vector<double> truths;
  truths.reserve(queries.size());
  for (const auto& q : queries) truths.push_back(ExecuteSelectivity(t, q));

  auto loss = [&](KdeEstimator* est) {
    double total = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      const double e = std::max(est->EstimateSelectivity(queries[i]), 1e-12);
      const double d = std::log(e) - std::log(std::max(truths[i], 1e-12));
      total += d * d;
    }
    return total;
  };
  const double before = loss(&kde);
  KdeSupervisedTune(&kde, queries, truths, /*rounds=*/1);
  const double after = loss(&kde);
  EXPECT_LE(after, before + 1e-9);
}

TEST(Mscn, LearnsWorkloadDistribution) {
  Table t = MakeDmvLike(8000, 25);
  WorkloadConfig wcfg;
  wcfg.num_queries = 700;
  wcfg.seed = 16;
  auto queries = GenerateWorkload(t, wcfg);
  auto cards = ExecuteCounts(t, queries);

  MscnConfig mcfg;
  mcfg.sample_rows = 300;
  mcfg.epochs = 25;
  mcfg.name = "MSCN-test";
  MscnEstimator mscn(t, mcfg);
  // Train on the first 600, evaluate on the held-out 100.
  std::vector<Query> train_q(queries.begin(), queries.begin() + 600);
  std::vector<int64_t> train_c(cards.begin(), cards.begin() + 600);
  mscn.Train(train_q, train_c);

  QuantileSketch errs;
  for (size_t i = 600; i < queries.size(); ++i) {
    const double est = mscn.EstimateCardinality(queries[i], t.num_rows());
    errs.Add(QError(est, static_cast<double>(cards[i])));
  }
  // In-distribution median error should be small (the paper reports ~1.2).
  EXPECT_LT(errs.Quantile(0.5), 8.0);
}

TEST(Mscn, SampleBitmapImprovesOverMscn0) {
  Table t = MakeDmvLike(8000, 27);
  WorkloadConfig wcfg;
  wcfg.num_queries = 500;
  wcfg.seed = 18;
  auto queries = GenerateWorkload(t, wcfg);
  auto cards = ExecuteCounts(t, queries);
  std::vector<Query> train_q(queries.begin(), queries.begin() + 400);
  std::vector<int64_t> train_c(cards.begin(), cards.begin() + 400);

  MscnConfig with;
  with.sample_rows = 500;
  with.epochs = 20;
  with.name = "MSCN-base";
  MscnEstimator mscn_with(t, with);
  mscn_with.Train(train_q, train_c);

  MscnConfig without = with;
  without.sample_rows = 0;
  without.name = "MSCN-0";
  MscnEstimator mscn_0(t, without);
  mscn_0.Train(train_q, train_c);

  double log_err_with = 0;
  double log_err_without = 0;
  for (size_t i = 400; i < queries.size(); ++i) {
    const double truth = static_cast<double>(cards[i]);
    log_err_with += std::log(QError(
        mscn_with.EstimateCardinality(queries[i], t.num_rows()), truth));
    log_err_without += std::log(QError(
        mscn_0.EstimateCardinality(queries[i], t.num_rows()), truth));
  }
  EXPECT_LT(log_err_with, log_err_without);
}

}  // namespace
}  // namespace naru
