// Cross-architecture conformance suite: every ConditionalModel
// implementation must satisfy the same contract, checked by one
// parameterized battery —
//   1. conditionals are normalized distributions at every position,
//   2. LogProbRows equals the chain product of ConditionalDist calls
//      (in the model's own order),
//   3. the joint sums to 1 over full enumeration,
//   4. progressive sampling converges to exact enumeration on a range
//      query (the sampler is integrator, not model, so this must hold for
//      every model),
//   5. the model-driven compressor round-trips the table exactly.
//
// Implementations covered: MADE, ResMADE, per-column nets (arch A), the
// causal Transformer, a permuted OrderedModel, a FactorizedModel with
// sub-column splits, the Chow-Liu Bayes net and the scanning Oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/compress.h"
#include "core/enumerator.h"
#include "core/factorized.h"
#include "core/made.h"
#include "core/ordered_model.h"
#include "core/oracle_model.h"
#include "core/percolumn.h"
#include "core/sampler.h"
#include "core/transformer.h"
#include "data/datasets.h"
#include "estimator/bayesnet.h"

namespace naru {
namespace {

// A single shared fixture table; domains are small enough to enumerate.
const std::vector<size_t> kDomains = {4, 5, 3, 4};

struct ModelUnderTest {
  std::string name;
  std::unique_ptr<ConditionalModel> model;
  // Oracle needs its table alive; OrderedModel owns its inner model.
  std::shared_ptr<Table> table;
};

ModelUnderTest MakeModelUnderTest(const std::string& kind) {
  ModelUnderTest out;
  out.name = kind;
  auto table = std::make_shared<Table>(
      MakeRandomTable(900, kDomains, /*seed=*/77, /*skew=*/1.0));
  out.table = table;

  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {24, 24};
  mcfg.encoder.onehot_threshold = 16;
  mcfg.seed = 5;

  if (kind == "made") {
    out.model = std::make_unique<MadeModel>(kDomains, mcfg);
  } else if (kind == "resmade") {
    mcfg.residual = true;
    out.model = std::make_unique<MadeModel>(kDomains, mcfg);
  } else if (kind == "percolumn") {
    PerColumnModel::Config pcfg;
    pcfg.hidden_sizes = {16, 16};
    pcfg.encoder = mcfg.encoder;
    pcfg.seed = 5;
    out.model = std::make_unique<PerColumnModel>(kDomains, pcfg);
  } else if (kind == "transformer") {
    TransformerModel::Config tcfg;
    tcfg.d_model = 16;
    tcfg.num_heads = 2;
    tcfg.num_layers = 2;
    tcfg.ffn_hidden = 32;
    tcfg.seed = 5;
    out.model = std::make_unique<TransformerModel>(kDomains, tcfg);
  } else if (kind == "ordered") {
    const std::vector<size_t> order = {2, 0, 3, 1};
    auto inner = std::make_unique<MadeModel>(
        OrderedModel::PermuteDomains(kDomains, order), mcfg);
    out.model = std::make_unique<OrderedModel>(std::move(inner), order);
  } else if (kind == "bayesnet") {
    out.model = std::make_unique<BayesNet>(*table);
  } else if (kind == "factorized") {
    // Threshold 3 splits three of the four columns, including domain 5
    // whose last high block is partial (the interesting mask case).
    FactorizedLayout layout = FactorizedLayout::Build(kDomains, 3);
    auto inner =
        std::make_unique<MadeModel>(layout.position_domains(), mcfg);
    out.model =
        std::make_unique<FactorizedModel>(std::move(inner), std::move(layout));
  } else if (kind == "oracle") {
    // Slight smoothing so every tuple has nonzero mass (needed for the
    // compressor round-trip on tuples absent from the table).
    out.model = std::make_unique<OracleModel>(table.get(), 0.05);
  } else {
    ADD_FAILURE() << "unknown kind " << kind;
  }
  return out;
}

class ConformanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ConformanceTest, ConditionalsAreNormalized) {
  ModelUnderTest m = MakeModelUnderTest(GetParam());
  const size_t positions = m.model->num_columns();
  IntMatrix samples(4, positions);
  Rng rng(9);
  for (size_t pos = 0; pos < positions; ++pos) {
    Matrix probs;
    m.model->ConditionalDist(samples, pos, &probs);
    const size_t d = m.model->DomainSize(pos);
    ASSERT_EQ(probs.cols(), d);
    for (size_t r = 0; r < samples.rows(); ++r) {
      double sum = 0;
      for (size_t v = 0; v < d; ++v) {
        ASSERT_GE(probs.At(r, v), 0.0f) << m.name;
        sum += probs.At(r, v);
      }
      ASSERT_NEAR(sum, 1.0, 1e-3) << m.name << " position " << pos;
      // Keep the prefix valid for the next position.
      samples.At(r, pos) =
          static_cast<int32_t>(rng.UniformInt(d));
    }
  }
}

TEST_P(ConformanceTest, LogProbMatchesConditionalChain) {
  ModelUnderTest m = MakeModelUnderTest(GetParam());
  const size_t n = kDomains.size();
  IntMatrix tuple(1, n);  // table order
  tuple.At(0, 0) = 1;
  tuple.At(0, 1) = 4;
  tuple.At(0, 2) = 2;
  tuple.At(0, 3) = 0;
  std::vector<double> lp;
  m.model->LogProbRows(tuple, &lp);

  // Chain in the MODEL's position layout: translate the table row through
  // the model's codec, then walk ConditionalDist position by position.
  const size_t positions = m.model->num_columns();
  IntMatrix model_codes(1, positions);
  m.model->EncodeTableRow(tuple.Row(0), model_codes.Row(0));
  IntMatrix samples(1, positions);
  double chain = 0;
  for (size_t pos = 0; pos < positions; ++pos) {
    Matrix probs;
    m.model->ConditionalDist(samples, pos, &probs);
    const int32_t code = model_codes.At(0, pos);
    chain += std::log(
        std::max(1e-300, static_cast<double>(
                             probs.At(0, static_cast<size_t>(code)))));
    samples.At(0, pos) = code;
  }
  EXPECT_NEAR(lp[0], chain, 1e-3) << m.name;
}

TEST_P(ConformanceTest, JointSumsToOne) {
  if (GetParam() == "factorized") {
    GTEST_SKIP() << "an untrained factorized model places mass on invalid "
                    "(high, low) combinations; its VALID mass sums below 1 "
                    "until training (see FactorizedModel tests)";
  }
  ModelUnderTest m = MakeModelUnderTest(GetParam());
  // All-wildcard region: enumeration covers the whole joint.
  std::vector<ValueSet> regions;
  for (size_t d : kDomains) regions.push_back(ValueSet::All(d));
  Query all(std::move(regions));
  EXPECT_NEAR(EnumerateSelectivity(m.model.get(), all), 1.0, 2e-3) << m.name;
}

TEST_P(ConformanceTest, SamplerConvergesToEnumeration) {
  ModelUnderTest m = MakeModelUnderTest(GetParam());
  Query q({ValueSet::Interval(4, 1, 3), ValueSet::All(5),
           ValueSet::Interval(3, 0, 1), ValueSet::Interval(4, 0, 2)});
  const double exact = EnumerateSelectivity(m.model.get(), q);
  ASSERT_GT(exact, 0.0) << m.name;

  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 20000;
  scfg.seed = 13;
  ProgressiveSampler sampler(m.model.get(), scfg);
  const double est = sampler.EstimateSelectivity(q);
  EXPECT_NEAR(est / exact, 1.0, 0.1) << m.name;
}

TEST_P(ConformanceTest, CompressorRoundTripsTable) {
  ModelUnderTest m = MakeModelUnderTest(GetParam());
  CompressionStats stats;
  auto blob = CompressTable(m.model.get(), *m.table, &stats);
  ASSERT_TRUE(blob.ok()) << m.name << ": " << blob.status().ToString();
  IntMatrix decoded;
  ASSERT_TRUE(DecompressTuples(m.model.get(), blob.ValueOrDie(), &decoded).ok())
      << m.name;
  std::vector<int32_t> row(m.table->num_columns());
  for (size_t r = 0; r < m.table->num_rows(); ++r) {
    m.table->GetRowCodes(r, row.data());
    for (size_t c = 0; c < m.table->num_columns(); ++c) {
      ASSERT_EQ(decoded.At(r, c), row[c])
          << m.name << " row " << r << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConformanceTest,
                         ::testing::Values("made", "resmade", "percolumn",
                                           "transformer", "ordered",
                                           "bayesnet", "oracle",
                                           "factorized"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace naru
