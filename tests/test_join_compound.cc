// Tests for the join substrate (§4.1) and compound-query algebra (§2.2):
// hash-join correctness vs nested loops, estimators over joined relations,
// inclusion-exclusion disjunction estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/oracle_model.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "data/join.h"
#include "estimator/indep.h"
#include "query/compound.h"
#include "query/executor.h"
#include "query/metrics.h"
#include "query/workload.h"

namespace naru {
namespace {

Table LeftTable() {
  return TableBuilder("left")
      .AddIntColumn("key", {1, 2, 2, 3, 5})
      .AddIntColumn("a", {10, 20, 21, 30, 50})
      .Build();
}

Table RightTable() {
  return TableBuilder("right")
      .AddIntColumn("key", {2, 2, 3, 4})
      .AddIntColumn("b", {7, 8, 9, 11})
      .Build();
}

TEST(Join, MatchesNestedLoopSemantics) {
  auto joined = HashJoinTables(LeftTable(), RightTable(),
                               {"key", "key", "j"});
  ASSERT_TRUE(joined.ok());
  const Table& j = joined.ValueOrDie();
  // key=2 matches 2x2 rows, key=3 matches 1x1: total 5 rows.
  EXPECT_EQ(j.num_rows(), 5u);
  // Columns: l_key, l_a, r_b.
  EXPECT_EQ(j.num_columns(), 3u);
  EXPECT_TRUE(j.ColumnIndex("l_key").ok());
  EXPECT_TRUE(j.ColumnIndex("l_a").ok());
  EXPECT_TRUE(j.ColumnIndex("r_b").ok());
  // Every joined row's key is 2 or 3.
  const size_t key_idx = j.ColumnIndex("l_key").ValueOrDie();
  for (size_t r = 0; r < j.num_rows(); ++r) {
    const int64_t key =
        j.column(key_idx).dict().ValueFor(j.column(key_idx).code(r)).AsInt();
    EXPECT_TRUE(key == 2 || key == 3);
  }
}

TEST(Join, MissingKeyColumnFails) {
  EXPECT_FALSE(
      HashJoinTables(LeftTable(), RightTable(), {"nope", "key"}).ok());
  EXPECT_FALSE(
      HashJoinTables(LeftTable(), RightTable(), {"key", "nope"}).ok());
}

TEST(Join, TypeMismatchFails) {
  Table strings = TableBuilder("s")
                      .AddValueColumn("key", {Value(std::string("x"))})
                      .Build();
  EXPECT_FALSE(HashJoinTables(LeftTable(), strings, {"key", "key"}).ok());
}

TEST(Join, EmptyResultIsError) {
  Table disjoint = TableBuilder("d")
                       .AddIntColumn("key", {100, 200})
                       .Build();
  EXPECT_FALSE(HashJoinTables(LeftTable(), disjoint, {"key", "key"}).ok());
}

TEST(Join, EstimatorOverJoinedRelation) {
  // §4.1: once trained on join-result tuples, the estimator answers
  // filters over any column of the joined relation.
  Rng rng(5);
  std::vector<int64_t> fact_key;
  std::vector<int64_t> fact_val;
  for (int i = 0; i < 4000; ++i) {
    fact_key.push_back(static_cast<int64_t>(rng.Zipf(30, 1.2)));
    fact_val.push_back(static_cast<int64_t>(rng.UniformInt(50)));
  }
  Table fact = TableBuilder("fact")
                   .AddIntColumn("key", fact_key)
                   .AddIntColumn("val", fact_val)
                   .Build();
  std::vector<int64_t> dim_key;
  std::vector<int64_t> dim_attr;
  for (int k = 0; k < 30; ++k) {
    dim_key.push_back(k);
    dim_attr.push_back(k % 5);
  }
  Table dim = TableBuilder("dim")
                  .AddIntColumn("key", dim_key)
                  .AddIntColumn("attr", dim_attr)
                  .Build();
  auto joined = HashJoinTables(fact, dim, {"key", "key", "fact_dim"});
  ASSERT_TRUE(joined.ok());
  const Table& j = joined.ValueOrDie();
  EXPECT_EQ(j.num_rows(), fact.num_rows());  // FK join preserves fact rows

  // Oracle-model Naru over the join answers cross-table filters well.
  OracleModel oracle(&j);
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 2000;
  NaruEstimator est(&oracle, ncfg, 0);
  const size_t val_idx = j.ColumnIndex("l_val").ValueOrDie();
  const size_t attr_idx = j.ColumnIndex("r_attr").ValueOrDie();
  Predicate p1{val_idx, CompareOp::kLe, 20, 0, {}};
  Predicate p2{attr_idx, CompareOp::kEq, 2, 0, {}};
  Query q(j, {p1, p2});
  const double truth = ExecuteSelectivity(j, q);
  EXPECT_NEAR(est.EstimateSelectivity(q), truth,
              std::max(0.25 * truth, 0.01));
}

TEST(Compound, ConjoinIntersectsRegions) {
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 1, 2, 3, 4, 5, 6, 7})
                .AddIntColumn("b", {0, 0, 1, 1, 0, 0, 1, 1})
                .Build();
  Query q1(t, {Predicate{0, CompareOp::kGe, 2, 0, {}}});
  Query q2(t, {Predicate{0, CompareOp::kLe, 5, 0, {}},
               Predicate{1, CompareOp::kEq, 1, 0, {}}});
  Query both = ConjoinQueries(q1, q2);
  EXPECT_EQ(both.region(0).Count(), 4u);  // [2, 5]
  EXPECT_EQ(both.region(1).Count(), 1u);
}

TEST(Compound, InclusionExclusionExactWithOracleEstimator) {
  // With a near-exact estimator, the disjunction estimate must match the
  // scan-based disjunction selectivity.
  Table t = MakeRandomTable(2000, {8, 10, 6}, 9);
  OracleModel oracle(&t);
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 4000;
  // Enumerate exactly for small regions so terms are near-exact.
  ncfg.enumeration_threshold = 100000;
  NaruEstimator est(&oracle, ncfg, 0);

  Query q1(t, {Predicate{0, CompareOp::kLe, 3, 0, {}}});
  Query q2(t, {Predicate{1, CompareOp::kGe, 6, 0, {}}});
  Query q3(t, {Predicate{2, CompareOp::kEq, 1, 0, {}}});
  const std::vector<Query> disjuncts = {q1, q2, q3};

  const double truth = ExecuteDisjunctionSelectivity(t, disjuncts);
  const double estimate = EstimateDisjunction(&est, disjuncts);
  EXPECT_NEAR(estimate, truth, 0.02);
}

TEST(Compound, DisjunctionOfDisjointPredicatesAdds) {
  Table t = MakeRandomTable(1000, {10, 5}, 11);
  IndepEstimator est(t);
  Query lo(t, {Predicate{0, CompareOp::kLe, 2, 0, {}}});
  Query hi(t, {Predicate{0, CompareOp::kGe, 7, 0, {}}});
  const double sum = est.EstimateSelectivity(lo) + est.EstimateSelectivity(hi);
  EXPECT_NEAR(EstimateDisjunction(&est, {lo, hi}), sum, 1e-9);
}

TEST(Compound, DisjunctionWithSelfIsIdempotent) {
  Table t = MakeRandomTable(1000, {10, 5}, 13);
  IndepEstimator est(t);
  Query q(t, {Predicate{0, CompareOp::kLe, 4, 0, {}}});
  EXPECT_NEAR(EstimateDisjunction(&est, {q, q}),
              est.EstimateSelectivity(q), 1e-9);
}

}  // namespace
}  // namespace naru
