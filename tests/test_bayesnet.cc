// Tests for the Chow-Liu Bayes-net baseline: structure recovery, CPT
// normalization, exact tree inference vs brute force, ConditionalModel
// conformance (sampler and enumerator agreement), and likelihood sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/enumerator.h"
#include "core/naru_estimator.h"
#include "core/sampler.h"
#include "data/datasets.h"
#include "data/table.h"
#include "estimator/bayesnet.h"
#include "query/executor.h"

namespace naru {
namespace {

// A 3-column table where col1 is a noisy copy of col0 and col2 is pure
// noise: the Chow-Liu tree must put the (0,1) edge in and leave 2 hanging
// off whichever node, with I(0;1) dominating.
Table MakeChainTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> c0(rows), c1(rows), c2(rows);
  for (size_t r = 0; r < rows; ++r) {
    c0[r] = static_cast<int64_t>(rng.UniformInt(4));
    c1[r] = rng.UniformDouble() < 0.9 ? c0[r]
                                      : static_cast<int64_t>(rng.UniformInt(4));
    c2[r] = static_cast<int64_t>(rng.UniformInt(3));
  }
  TableBuilder b("chain");
  b.AddIntColumn("a", c0);
  b.AddIntColumn("b", c1);
  b.AddIntColumn("c", c2);
  return b.Build();
}

TEST(BayesNet, RecoversStrongDependency) {
  Table t = MakeChainTable(4000, 3);
  BayesNet net(t);
  // Column 1's parent must be column 0 (or vice versa through the root):
  // the (0,1) edge has far more mutual information than any edge to 2.
  const auto& par = net.parents();
  const bool edge01 = (par[1] == 0) || (par[0] == 1);
  EXPECT_TRUE(edge01) << "parents: " << par[0] << "," << par[1] << ","
                      << par[2];
}

TEST(BayesNet, TopoOrderIsParentsFirst) {
  Table t = MakeRandomTable(800, {5, 4, 6, 3}, 7, /*skew=*/0.9);
  BayesNet net(t);
  const auto& topo = net.topo_order();
  ASSERT_EQ(topo.size(), 4u);
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < 4; ++i) pos[topo[i]] = i;
  for (size_t v = 0; v < 4; ++v) {
    if (net.parents()[v] >= 0) {
      EXPECT_LT(pos[static_cast<size_t>(net.parents()[v])], pos[v]);
    }
  }
}

TEST(BayesNet, JointSumsToOne) {
  Table t = MakeRandomTable(500, {3, 4, 2}, 11, /*skew=*/0.8);
  BayesNet net(t);
  // Enumerate the ACTUAL dictionary domains (the generator only promises
  // upper bounds; absent values do not enter the dictionary).
  const int d0 = static_cast<int>(t.column(0).DomainSize());
  const int d1 = static_cast<int>(t.column(1).DomainSize());
  const int d2 = static_cast<int>(t.column(2).DomainSize());
  double total = 0;
  IntMatrix tuple(1, 3);
  std::vector<double> lp;
  for (int a = 0; a < d0; ++a) {
    for (int b = 0; b < d1; ++b) {
      for (int c = 0; c < d2; ++c) {
        tuple.At(0, 0) = a;
        tuple.At(0, 1) = b;
        tuple.At(0, 2) = c;
        net.LogProbRows(tuple, &lp);
        total += std::exp(lp[0]);
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(BayesNet, ExactInferenceMatchesEnumeratedModelMass) {
  // ExactSelectivity (message passing) must equal the sum of the model's
  // own point probabilities over the region (enumeration through the
  // ConditionalModel adapter): two independent code paths, same measure.
  Table t = MakeRandomTable(700, {4, 5, 3, 4}, 13, /*skew=*/1.0);
  BayesNet net(t);
  const std::vector<Query> queries = {
      Query(t, {{0, CompareOp::kLe, 2}}),
      Query(t, {{1, CompareOp::kGe, 2}, {2, CompareOp::kEq, 1}}),
      Query(t, {{0, CompareOp::kNeq, 0},
                {1, CompareOp::kLe, 3},
                {3, CompareOp::kGe, 1}}),
      Query(t, {{2, CompareOp::kIn, 0, 0, {0, 2}}}),
  };
  for (const auto& q : queries) {
    const double exact = net.ExactSelectivity(q);
    const double enumerated = EnumerateSelectivity(&net, q);
    EXPECT_NEAR(exact, enumerated, 1e-5) << q.ToString(t);
  }
}

TEST(BayesNet, ProgressiveSamplerConvergesToExact) {
  // The paper's Algorithm 1 runs over any ConditionalModel; on the tree
  // model its estimates must converge to the message-passing answer.
  Table t = MakeRandomTable(900, {5, 6, 4}, 17, /*skew=*/1.1);
  BayesNet net(t);
  Query q(t, {{0, CompareOp::kLe, 2}, {2, CompareOp::kGe, 1}});
  const double exact = net.ExactSelectivity(q);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 20000;
  ProgressiveSampler sampler(&net, scfg);
  const double sampled = sampler.EstimateSelectivity(q);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(sampled / exact, 1.0, 0.08);
}

TEST(BayesNet, AccuracyBeatsIndependenceOnCorrelatedData) {
  // With a strong pairwise dependency, the tree captures what a pure
  // independence model cannot: P(a = x AND b = x) for the noisy-copy pair.
  Table t = MakeChainTable(6000, 19);
  BayesNetEstimator bn(t);

  Query q(t, {{0, CompareOp::kEq, 2}, {1, CompareOp::kEq, 2}});
  const double truth = ExecuteSelectivity(t, q);
  const double bn_est = bn.EstimateSelectivity(q);

  // Independence predicts p(a=2)*p(b=2) ~ 1/16; the truth is ~0.9/4.
  double pa = 0, pb = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    pa += t.column(0).code(r) == 2;
    pb += t.column(1).code(r) == 2;
  }
  pa /= static_cast<double>(t.num_rows());
  pb /= static_cast<double>(t.num_rows());
  const double indep_est = pa * pb;

  const auto qerr = [&](double est) {
    return std::max(est, truth) / std::max(1e-12, std::min(est, truth));
  };
  EXPECT_LT(qerr(bn_est), 1.3);
  EXPECT_GT(qerr(indep_est), 2.0);
}

TEST(BayesNet, SmoothingKeepsUnseenTuplesFinite) {
  Table t = MakeRandomTable(50, {6, 6}, 23, /*skew=*/2.0);
  BayesNet net(t);
  // Probe every cell, including pairs that never co-occurred.
  IntMatrix tuple(1, 2);
  std::vector<double> lp;
  for (int a = 0; a < static_cast<int>(t.column(0).DomainSize()); ++a) {
    for (int b = 0; b < static_cast<int>(t.column(1).DomainSize()); ++b) {
      tuple.At(0, 0) = a;
      tuple.At(0, 1) = b;
      net.LogProbRows(tuple, &lp);
      EXPECT_TRUE(std::isfinite(lp[0]));
    }
  }
}

TEST(BayesNet, WildcardQueryIsOne) {
  Table t = MakeRandomTable(300, {4, 3, 5}, 29, /*skew=*/0.7);
  BayesNetEstimator bn(t);
  Query q(t, std::vector<Predicate>{});
  EXPECT_NEAR(bn.EstimateSelectivity(q), 1.0, 1e-5);
}

TEST(BayesNet, EmptyRegionIsZero) {
  Table t = MakeRandomTable(300, {4, 3}, 31, /*skew=*/0.7);
  BayesNetEstimator bn(t);
  // a <= 1 AND a >= 3 is unsatisfiable.
  Query q(t, {{0, CompareOp::kLe, 1}, {0, CompareOp::kGe, 3}});
  EXPECT_EQ(bn.EstimateSelectivity(q), 0.0);
}

TEST(BayesNet, SingleColumnDegenerate) {
  Table t = MakeRandomTable(400, {7}, 37, /*skew=*/1.0);
  BayesNetEstimator bn(t);
  Query q(t, {{0, CompareOp::kLe, 3}});
  const double truth = ExecuteSelectivity(t, q);
  // Exact marginal + smoothing: close to truth.
  EXPECT_NEAR(bn.EstimateSelectivity(q), truth, 0.05);
}

TEST(BayesNet, NaruEstimatorWrapsBayesNetModel) {
  // Full integration: NaruEstimator(progressive sampling + enumeration
  // fallback) over the BN's ConditionalModel face.
  Table t = MakeRandomTable(800, {5, 4, 6}, 41, /*skew=*/1.0);
  BayesNet net(t);
  NaruEstimatorConfig ecfg;
  ecfg.num_samples = 4000;
  ecfg.enumeration_threshold = 0;
  NaruEstimator est(&net, ecfg, net.SizeBytes(), "BN-psample");
  Query q(t, {{1, CompareOp::kGe, 1}, {2, CompareOp::kLe, 4}});
  const double exact = net.ExactSelectivity(q);
  const double sampled = est.EstimateSelectivity(q);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(sampled / exact, 1.0, 0.15);
}

}  // namespace
}  // namespace naru
