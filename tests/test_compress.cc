// Tests for the range coder and the model-driven table codec: exact
// round-trips (pure coder; MADE / Bayes-net / permuted models), the
// bits-per-tuple vs cross-entropy identity, and corrupt-input handling.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/compress.h"
#include "core/made.h"
#include "core/ordered_model.h"
#include "data/datasets.h"
#include "estimator/bayesnet.h"
#include "util/random.h"

namespace naru {
namespace {

// --- Pure range-coder round-trips over random streams ---------------------

struct CoderCase {
  uint64_t seed;
  size_t alphabet;
  size_t symbols;
};

class RangeCoderRoundTrip : public ::testing::TestWithParam<CoderCase> {};

TEST_P(RangeCoderRoundTrip, ExactRecovery) {
  const CoderCase& c = GetParam();
  Rng rng(c.seed);

  // Random (skewed) frequency table with every entry >= 1.
  std::vector<uint32_t> freqs(c.alphabet);
  for (auto& f : freqs) {
    f = 1 + static_cast<uint32_t>(rng.UniformInt(1000));
  }
  const uint32_t total = std::accumulate(freqs.begin(), freqs.end(), 0u);
  std::vector<uint32_t> cum(c.alphabet, 0);
  for (size_t v = 1; v < c.alphabet; ++v) cum[v] = cum[v - 1] + freqs[v - 1];

  // Random symbol stream drawn from the same skewed distribution.
  std::vector<uint32_t> stream(c.symbols);
  for (auto& s : stream) {
    const uint32_t t = static_cast<uint32_t>(rng.UniformInt(total));
    uint32_t v = 0;
    while (v + 1 < c.alphabet && cum[v] + freqs[v] <= t) ++v;
    s = v;
  }

  std::string buf;
  RangeEncoder enc(&buf);
  for (uint32_t s : stream) enc.Encode(cum[s], freqs[s], total);
  enc.Finish();

  RangeDecoder dec(reinterpret_cast<const uint8_t*>(buf.data()), buf.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    const uint32_t target = dec.DecodeTarget(total);
    uint32_t v = 0;
    while (v + 1 < c.alphabet && cum[v] + freqs[v] <= target) ++v;
    ASSERT_EQ(v, stream[i]) << "symbol " << i;
    dec.Consume(cum[v], freqs[v]);
  }
  EXPECT_FALSE(dec.overran());
}

INSTANTIATE_TEST_SUITE_P(
    Streams, RangeCoderRoundTrip,
    ::testing::Values(CoderCase{1, 2, 2000}, CoderCase{2, 3, 5000},
                      CoderCase{3, 17, 3000}, CoderCase{4, 256, 4000},
                      CoderCase{5, 1000, 2000}, CoderCase{6, 5, 1},
                      CoderCase{7, 2, 50000}));

TEST(RangeCoder, CompressedSizeTracksEntropy) {
  // A heavily skewed binary source: ~H(p) bits/symbol, far below 1.
  const uint32_t total = 1u << 16;
  const uint32_t f1 = total / 64;  // p(1) ~ 1.56%
  const uint32_t f0 = total - f1;
  Rng rng(11);
  const size_t n = 100000;
  std::string buf;
  RangeEncoder enc(&buf);
  size_t ones = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool one = rng.UniformInt(64) == 0;
    ones += one;
    if (one) {
      enc.Encode(f0, f1, total);
    } else {
      enc.Encode(0, f0, total);
    }
  }
  enc.Finish();
  const double p = 1.0 / 64.0;
  const double entropy_bits = n * (-p * std::log2(p) -
                                   (1 - p) * std::log2(1 - p));
  const double coded_bits = 8.0 * static_cast<double>(buf.size());
  EXPECT_LT(coded_bits, entropy_bits * 1.1 + 64);
  EXPECT_GT(coded_bits, entropy_bits * 0.9);
  (void)ones;
}

TEST(QuantizeFreqs, EveryEntryPositiveAndTotalsMatch) {
  Matrix probs(1, 5);
  probs.At(0, 0) = 0.9f;
  probs.At(0, 1) = 0.1f;
  probs.At(0, 2) = 0.0f;   // zero prob must still be codable
  probs.At(0, 3) = -0.1f;  // defensive: clamp negatives
  probs.At(0, 4) = 2.0f;   // defensive: clamp above 1
  std::vector<uint32_t> freqs;
  const uint32_t total = QuantizeFreqs(probs.Row(0), 5, 1u << 16, &freqs);
  uint32_t sum = 0;
  for (uint32_t f : freqs) {
    EXPECT_GE(f, 1u);
    sum += f;
  }
  EXPECT_EQ(sum, total);
  EXPECT_GT(freqs[0], freqs[1]);
  EXPECT_EQ(freqs[2], 1u);
  EXPECT_EQ(freqs[3], 1u);
}

// --- Model-driven codec ----------------------------------------------------

MadeModel::Config SmallConfig(uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.encoder.embed_dim = 4;
  cfg.seed = seed;
  return cfg;
}

std::vector<size_t> TableDomains(const Table& t) {
  std::vector<size_t> d(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    d[c] = t.column(c).DomainSize();
  }
  return d;
}

void ExpectRoundTrip(ConditionalModel* model, const Table& t) {
  CompressionStats stats;
  auto blob = CompressTable(model, t, &stats);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  IntMatrix decoded;
  ASSERT_TRUE(DecompressTuples(model, blob.ValueOrDie(), &decoded).ok());
  ASSERT_EQ(decoded.rows(), t.num_rows());
  std::vector<int32_t> row(t.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    t.GetRowCodes(r, row.data());
    for (size_t c = 0; c < t.num_columns(); ++c) {
      ASSERT_EQ(decoded.At(r, c), row[c]) << "row " << r << " col " << c;
    }
  }
}

TEST(TableCodec, RoundTripWithUntrainedMade) {
  Table t = MakeRandomTable(800, {6, 9, 4}, 3, /*skew=*/1.0);
  MadeModel model(TableDomains(t), SmallConfig(5));
  ExpectRoundTrip(&model, t);
}

TEST(TableCodec, RoundTripWithBayesNet) {
  Table t = MakeRandomTable(1200, {8, 5, 7, 3}, 7, /*skew=*/1.2);
  BayesNet net(t);
  ExpectRoundTrip(&net, t);
}

TEST(TableCodec, RoundTripWithPermutedModel) {
  Table t = MakeRandomTable(600, {5, 8, 4}, 11, /*skew=*/0.9);
  const auto domains = TableDomains(t);
  const std::vector<size_t> order = {2, 0, 1};
  auto inner = std::make_unique<MadeModel>(
      OrderedModel::PermuteDomains(domains, order), SmallConfig(13));
  OrderedModel model(std::move(inner), order);
  ExpectRoundTrip(&model, t);
}

TEST(TableCodec, BitsPerTupleApproachCrossEntropy) {
  // The Bayes net fits the generated table well; coded size must sit just
  // above the model's cross entropy on the data and far below the naive
  // dictionary encoding.
  Table t = MakeRandomTable(4000, {8, 8, 6, 4}, 17, /*skew=*/1.3);
  BayesNet net(t);

  // Model cross entropy on the data, in bits/tuple.
  IntMatrix codes(t.num_rows(), t.num_columns());
  std::vector<int32_t> row(t.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    t.GetRowCodes(r, row.data());
    for (size_t c = 0; c < t.num_columns(); ++c) codes.At(r, c) = row[c];
  }
  std::vector<double> lp;
  net.LogProbRows(codes, &lp);
  double ce_bits = 0;
  for (double v : lp) ce_bits -= v;
  ce_bits /= std::log(2.0) * static_cast<double>(t.num_rows());

  CompressionStats stats;
  auto blob = CompressTable(&net, t, &stats);
  ASSERT_TRUE(blob.ok());
  EXPECT_LT(stats.bits_per_tuple, ce_bits * 1.05 + 0.5);
  EXPECT_GT(stats.bits_per_tuple, ce_bits * 0.95 - 0.5);
  EXPECT_LT(stats.bits_per_tuple, stats.naive_bits_per_tuple);
}

TEST(TableCodec, BetterModelCompressesBetter) {
  // The fitted Bayes net must beat an untrained MADE on correlated data —
  // compression quality is exactly the entropy gap made visible.
  Table t = MakeRandomTable(3000, {8, 8, 8}, 19, /*skew=*/1.2);
  BayesNet net(t);
  MadeModel untrained(TableDomains(t), SmallConfig(23));

  CompressionStats fitted, random;
  ASSERT_TRUE(CompressTable(&net, t, &fitted).ok());
  ASSERT_TRUE(CompressTable(&untrained, t, &random).ok());
  EXPECT_LT(fitted.bits_per_tuple, random.bits_per_tuple);
}

TEST(TableCodec, RejectsCorruptInputs) {
  Table t = MakeRandomTable(200, {4, 5}, 29, /*skew=*/0.8);
  MadeModel model(TableDomains(t), SmallConfig(31));
  auto blob = CompressTable(&model, t);
  ASSERT_TRUE(blob.ok());
  IntMatrix out;

  // Bad magic.
  std::string bad = blob.ValueOrDie();
  bad[0] = 'X';
  EXPECT_FALSE(DecompressTuples(&model, bad, &out).ok());

  // Truncated header.
  EXPECT_FALSE(
      DecompressTuples(&model, blob.ValueOrDie().substr(0, 10), &out).ok());

  // Wrong model shape.
  MadeModel other({4, 5, 3}, SmallConfig(37));
  EXPECT_FALSE(DecompressTuples(&other, blob.ValueOrDie(), &out).ok());

  // Truncated payload.
  const std::string& good = blob.ValueOrDie();
  EXPECT_FALSE(
      DecompressTuples(&model, good.substr(0, good.size() - 8), &out).ok());
}

TEST(TableCodec, EmptyTableIsLegal) {
  // Zero-row blobs round-trip to an empty code matrix.
  Table t = MakeRandomTable(150, {4, 3}, 41, /*skew=*/0.8);
  MadeModel model(TableDomains(t), SmallConfig(43));
  CompressionStats stats;
  auto blob = CompressTable(&model, t, &stats);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(stats.rows, 150u);
  EXPECT_GT(stats.payload_bytes, 0u);
}

}  // namespace
}  // namespace naru
