// Tests for the MADE autoregressive model: masking invariants, likelihood
// normalization, gradient correctness, training convergence, save/load.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/entropy.h"
#include "core/made.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "data/table_stats.h"
#include "nn/adam.h"

namespace naru {
namespace {

MadeModel::Config SmallConfig(uint64_t seed = 1) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {32, 32};
  cfg.encoder.onehot_threshold = 8;
  cfg.encoder.embed_dim = 4;
  cfg.seed = seed;
  return cfg;
}

TEST(Made, AutoregressivePropertyHolds) {
  // Changing column j must not change output blocks i <= j.
  const std::vector<size_t> domains = {5, 3, 12, 4};  // col 2 embedded
  MadeModel model(domains, SmallConfig());

  IntMatrix base(1, 4);
  base.At(0, 0) = 2;
  base.At(0, 1) = 1;
  base.At(0, 2) = 7;
  base.At(0, 3) = 3;

  for (size_t j = 0; j < domains.size(); ++j) {
    // Record conditionals for all columns with the base tuple.
    std::vector<Matrix> before(domains.size());
    for (size_t i = 0; i < domains.size(); ++i) {
      model.ConditionalDist(base, i, &before[i]);
    }
    IntMatrix mutated = base;
    mutated.At(0, j) = (base.At(0, j) + 1) % static_cast<int32_t>(domains[j]);
    for (size_t i = 0; i < domains.size(); ++i) {
      Matrix after;
      model.ConditionalDist(mutated, i, &after);
      const bool must_match = i <= j;
      if (must_match) {
        for (size_t v = 0; v < domains[i]; ++v) {
          ASSERT_NEAR(before[i].At(0, v), after.At(0, v), 1e-6)
              << "output " << i << " changed when column " << j
              << " was perturbed";
        }
      }
    }
  }
}

TEST(Made, ConditionalsAreNormalized) {
  const std::vector<size_t> domains = {4, 20, 3};
  MadeModel model(domains, SmallConfig(3));
  IntMatrix batch(5, 3);
  Rng rng(5);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      batch.At(r, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
    }
  }
  for (size_t c = 0; c < 3; ++c) {
    Matrix probs;
    model.ConditionalDist(batch, c, &probs);
    ASSERT_EQ(probs.rows(), 5u);
    ASSERT_EQ(probs.cols(), domains[c]);
    for (size_t r = 0; r < 5; ++r) {
      double sum = 0;
      for (size_t v = 0; v < domains[c]; ++v) {
        EXPECT_GE(probs.At(r, v), 0.0f);
        sum += probs.At(r, v);
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

TEST(Made, JointSumsToOneByEnumeration) {
  // Small enough joint to enumerate: total probability must be 1 even for
  // an untrained model (softmax chain rule is normalized by construction).
  const std::vector<size_t> domains = {3, 4, 2};
  MadeModel model(domains, SmallConfig(7));
  double total = 0;
  IntMatrix tuple(1, 3);
  std::vector<double> lp;
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      for (size_t c = 0; c < 2; ++c) {
        tuple.At(0, 0) = static_cast<int32_t>(a);
        tuple.At(0, 1) = static_cast<int32_t>(b);
        tuple.At(0, 2) = static_cast<int32_t>(c);
        model.LogProbRows(tuple, &lp);
        total += std::exp(lp[0]);
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(Made, LogProbMatchesConditionalChain) {
  const std::vector<size_t> domains = {4, 9, 5};
  MadeModel model(domains, SmallConfig(9));
  IntMatrix tuple(1, 3);
  tuple.At(0, 0) = 1;
  tuple.At(0, 1) = 7;
  tuple.At(0, 2) = 0;
  std::vector<double> lp;
  model.LogProbRows(tuple, &lp);
  double chain = 0;
  for (size_t c = 0; c < 3; ++c) {
    Matrix probs;
    model.ConditionalDist(tuple, c, &probs);
    chain += std::log(
        static_cast<double>(probs.At(0, static_cast<size_t>(tuple.At(0, c)))));
  }
  EXPECT_NEAR(lp[0], chain, 1e-4);
}

TEST(Made, GradientMatchesFiniteDifference) {
  const std::vector<size_t> domains = {3, 14, 4};  // includes embedding col
  MadeModel::Config cfg = SmallConfig(11);
  cfg.hidden_sizes = {8};
  MadeModel model(domains, cfg);

  IntMatrix batch(3, 3);
  Rng rng(13);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      batch.At(r, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
    }
  }

  auto params = model.Parameters();
  for (auto* p : params) p->ZeroGrad();
  model.ForwardBackward(batch);

  // Loss in ForwardBackward is mean-scaled for gradients but summed for
  // the return; finite differences check the mean objective.
  auto mean_nll = [&]() {
    std::vector<double> lp;
    model.LogProbRows(batch, &lp);
    double total = 0;
    for (double v : lp) total -= v;
    return total / static_cast<double>(batch.rows());
  };

  const double eps = 1e-2;
  size_t checked = 0;
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->count(); i += std::max<size_t>(p->count() / 5, 1)) {
      const float orig = p->value.data()[i];
      // Masked MADE entries hold exactly 0 and receive no gradient by
      // construction; perturbing them breaks the autoregressive invariant,
      // so they are excluded from the finite-difference check.
      if (orig == 0.0f && p->grad.data()[i] == 0.0f) continue;
      p->value.data()[i] = orig + static_cast<float>(eps);
      const double up = mean_nll();
      p->value.data()[i] = orig - static_cast<float>(eps);
      const double down = mean_nll();
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      // Skip masked entries that see no gradient flow.
      EXPECT_NEAR(p->grad.data()[i], numeric, 5e-2)
          << p->name << "[" << i << "]";
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(Made, TrainingReducesNllTowardEntropy) {
  // A strongly-correlated tiny table; a trained model must approach the
  // data entropy (gap << independent-model gap).
  Table t = MakeRandomTable(1500, {6, 6, 6}, 17, /*skew=*/1.2);
  const double h_data = TableStats::JointEntropyBits(t);

  MadeModel::Config cfg = SmallConfig(19);
  cfg.hidden_sizes = {64, 64};
  MadeModel model(
      {t.column(0).DomainSize(), t.column(1).DomainSize(),
       t.column(2).DomainSize()},
      cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 25;
  tcfg.batch_size = 128;
  tcfg.lr = 5e-3;
  Trainer trainer(&model, tcfg);
  const auto curve = trainer.Train(t);
  EXPECT_LT(curve.back(), curve.front());

  const double gap = EntropyGapBits(&model, t);
  EXPECT_GE(gap, -0.15);  // cross entropy >= entropy (up to sampling noise)
  EXPECT_LT(gap, 1.0);    // and the fit is tight on this easy table
  (void)h_data;
}

TEST(Made, EmbeddingReuseShrinksModel) {
  const std::vector<size_t> domains = {2000, 4};
  MadeModel::Config with = SmallConfig(23);
  with.encoder.onehot_threshold = 64;
  with.encoder.embed_dim = 16;
  with.embedding_reuse = true;
  MadeModel reuse(domains, with);

  MadeModel::Config without = with;
  without.embedding_reuse = false;
  MadeModel full(domains, without);
  // The full FC head carries an extra (hidden x 2000) weight block.
  EXPECT_LT(reuse.SizeBytes(), full.SizeBytes());
}

TEST(Made, BinaryEncodingWorks) {
  MadeModel::Config cfg = SmallConfig(29);
  cfg.encoder.onehot_threshold = 4;
  cfg.encoder.binary_for_large = true;
  cfg.embedding_reuse = false;  // reuse requires embeddings
  const std::vector<size_t> domains = {10, 3, 100};
  MadeModel model(domains, cfg);
  IntMatrix batch(2, 3);
  batch.At(0, 0) = 9;
  batch.At(0, 2) = 99;
  batch.At(1, 1) = 2;
  Matrix probs;
  model.ConditionalDist(batch, 2, &probs);
  double sum = 0;
  for (size_t v = 0; v < 100; ++v) sum += probs.At(0, v);
  EXPECT_NEAR(sum, 1.0, 1e-4);
  EXPECT_EQ(model.encoder().encoding(0), ColEncoding::kBinary);
  EXPECT_EQ(model.encoder().encoding(1), ColEncoding::kOneHot);
  // Binary input for domain 100 uses only ceil(log2(100)) = 7 dims.
  EXPECT_EQ(model.encoder().width(2), 7u);
}

TEST(Made, SaveLoadRoundTrip) {
  const std::vector<size_t> domains = {5, 30, 7};
  MadeModel a(domains, SmallConfig(31));
  MadeModel b(domains, SmallConfig(99));  // different init

  IntMatrix tuple(1, 3);
  tuple.At(0, 0) = 4;
  tuple.At(0, 1) = 21;
  tuple.At(0, 2) = 2;
  std::vector<double> lp_a;
  a.LogProbRows(tuple, &lp_a);

  const std::string path = testing::TempDir() + "/naru_made_test.bin";
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  std::vector<double> lp_b;
  b.LogProbRows(tuple, &lp_b);
  EXPECT_NEAR(lp_a[0], lp_b[0], 1e-6);
  std::remove(path.c_str());
}

TEST(ResMade, AutoregressivePropertyHolds) {
  // The residual identity path connects equal-degree units only, so the
  // masking invariant must survive verbatim.
  const std::vector<size_t> domains = {5, 3, 12, 4};
  MadeModel::Config cfg = SmallConfig(41);
  cfg.hidden_sizes = {24, 24, 24};
  cfg.residual = true;
  MadeModel model(domains, cfg);

  IntMatrix base(1, 4);
  base.At(0, 0) = 2;
  base.At(0, 1) = 1;
  base.At(0, 2) = 7;
  base.At(0, 3) = 3;
  for (size_t j = 0; j < domains.size(); ++j) {
    std::vector<Matrix> before(domains.size());
    for (size_t i = 0; i < domains.size(); ++i) {
      model.ConditionalDist(base, i, &before[i]);
    }
    IntMatrix mutated = base;
    mutated.At(0, j) = (base.At(0, j) + 1) % static_cast<int32_t>(domains[j]);
    for (size_t i = 0; i < domains.size(); ++i) {
      Matrix after;
      model.ConditionalDist(mutated, i, &after);
      if (i <= j) {
        for (size_t v = 0; v < domains[i]; ++v) {
          ASSERT_NEAR(before[i].At(0, v), after.At(0, v), 1e-6)
              << "resmade output " << i << " changed with column " << j;
        }
      }
    }
  }
}

TEST(ResMade, GradientMatchesFiniteDifference) {
  const std::vector<size_t> domains = {3, 14, 4};
  MadeModel::Config cfg = SmallConfig(43);
  cfg.hidden_sizes = {12, 12};
  cfg.residual = true;
  MadeModel model(domains, cfg);

  IntMatrix batch(3, 3);
  Rng rng(47);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      batch.At(r, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
    }
  }
  auto params = model.Parameters();
  for (auto* p : params) p->ZeroGrad();
  model.ForwardBackward(batch);

  auto mean_nll = [&]() {
    std::vector<double> lp;
    model.LogProbRows(batch, &lp);
    double total = 0;
    for (double v : lp) total -= v;
    return total / static_cast<double>(batch.rows());
  };
  const double eps = 1e-2;
  size_t checked = 0;
  for (Parameter* p : params) {
    for (size_t i = 0; i < p->count();
         i += std::max<size_t>(p->count() / 5, 1)) {
      const float orig = p->value.data()[i];
      if (orig == 0.0f && p->grad.data()[i] == 0.0f) continue;
      p->value.data()[i] = orig + static_cast<float>(eps);
      const double up = mean_nll();
      p->value.data()[i] = orig - static_cast<float>(eps);
      const double down = mean_nll();
      p->value.data()[i] = orig;
      EXPECT_NEAR(p->grad.data()[i], (up - down) / (2 * eps), 5e-2)
          << p->name << "[" << i << "]";
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST(ResMade, TrainsAtLeastAsWellAsPlain) {
  // On a correlated table, ResMADE with the same layer sizes should reach
  // a comparable (typically better) NLL after the same few epochs.
  Table t = MakeRandomTable(1200, {8, 8, 8}, 53, /*skew=*/1.1);
  const std::vector<size_t> domains = {t.column(0).DomainSize(),
                                       t.column(1).DomainSize(),
                                       t.column(2).DomainSize()};
  MadeModel::Config plain_cfg = SmallConfig(59);
  plain_cfg.hidden_sizes = {48, 48, 48};
  MadeModel::Config res_cfg = plain_cfg;
  res_cfg.residual = true;

  TrainerConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 128;
  tcfg.lr = 5e-3;

  MadeModel plain(domains, plain_cfg);
  MadeModel res(domains, res_cfg);
  const double nll_plain = Trainer(&plain, tcfg).Train(t).back();
  const double nll_res = Trainer(&res, tcfg).Train(t).back();
  EXPECT_LT(nll_res, nll_plain + 0.5);  // never dramatically worse
}

TEST(ResMade, SkipRequiresEqualWidths) {
  // Mixed widths: skips must silently apply only between equal-width
  // layers, and the model must still produce normalized conditionals.
  MadeModel::Config cfg = SmallConfig(61);
  cfg.hidden_sizes = {16, 32, 32, 16};
  cfg.residual = true;
  MadeModel model({4, 9, 5}, cfg);
  IntMatrix batch(2, 3);
  batch.Fill(1);
  Matrix probs;
  model.ConditionalDist(batch, 2, &probs);
  double sum = 0;
  for (size_t v = 0; v < 5; ++v) sum += probs.At(0, v);
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Made, SingleColumnDegenerate) {
  // n = 1: the model reduces to a learned marginal.
  MadeModel model({6}, SmallConfig(37));
  IntMatrix batch(2, 1);
  Matrix probs;
  model.ConditionalDist(batch, 0, &probs);
  double sum = 0;
  for (size_t v = 0; v < 6; ++v) sum += probs.At(0, v);
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // And the conditional ignores the (non-existent) prefix: both rows equal.
  for (size_t v = 0; v < 6; ++v) {
    EXPECT_FLOAT_EQ(probs.At(0, v), probs.At(1, v));
  }
}

}  // namespace
}  // namespace naru
