// End-to-end integration tests: train Naru on a correlated table, query it
// through the full estimator stack, and verify the paper's qualitative
// claims at miniature scale (Naru beats independence assumptions at tail;
// refresh fixes staleness; OOD queries are handled).
#include <gtest/gtest.h>

#include <cmath>

#include "core/entropy.h"
#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "estimator/indep.h"
#include "query/executor.h"
#include "query/metrics.h"
#include "query/workload.h"

namespace naru {
namespace {

std::vector<size_t> Domains(const Table& t) {
  std::vector<size_t> domains;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    domains.push_back(t.column(c).DomainSize());
  }
  return domains;
}

class TrainedNaruTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(MakeDmvLike(15000, 51));
    MadeModel::Config mcfg;
    mcfg.hidden_sizes = {64, 64, 64};
    mcfg.encoder.onehot_threshold = 64;
    mcfg.encoder.embed_dim = 16;
    mcfg.seed = 4;
    model_ = new MadeModel(Domains(*table_), mcfg);
    TrainerConfig tcfg;
    tcfg.epochs = 12;
    tcfg.batch_size = 256;
    tcfg.lr = 2e-3;
    Trainer trainer(model_, tcfg);
    trainer.Train(*table_);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete table_;
    model_ = nullptr;
    table_ = nullptr;
  }

  static Table* table_;
  static MadeModel* model_;
};

Table* TrainedNaruTest::table_ = nullptr;
MadeModel* TrainedNaruTest::model_ = nullptr;

TEST_F(TrainedNaruTest, EntropyGapIsBoundedAndTrainingShrinksIt) {
  // The gap is measured against the *empirical* joint entropy; rows of the
  // synthetic table carry irreducible per-row noise, so the absolute gap
  // stays well above the paper's DMV value. What must hold: the gap is
  // non-negative (KL >= 0, modulo sampling noise) and a freshly initialized
  // model is far worse than the trained one.
  const double gap = EntropyGapBits(model_, *table_);
  EXPECT_GE(gap, -0.2);

  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {64, 64, 64};
  mcfg.encoder.onehot_threshold = 64;
  mcfg.encoder.embed_dim = 16;
  mcfg.seed = 4;
  std::vector<size_t> domains = Domains(*table_);
  MadeModel untrained(domains, mcfg);
  const double untrained_gap = EntropyGapBits(&untrained, *table_);
  EXPECT_LT(gap, untrained_gap - 1.0);
}

TEST_F(TrainedNaruTest, BeatsIndepAtTail) {
  IndepEstimator indep(*table_);
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 1500;
  NaruEstimator nar(model_, ncfg, model_->SizeBytes());

  WorkloadConfig wcfg;
  wcfg.num_queries = 80;
  wcfg.min_filters = 4;
  wcfg.max_filters = 8;
  wcfg.seed = 61;
  const auto queries = GenerateWorkload(*table_, wcfg);

  QuantileSketch naru_err;
  QuantileSketch indep_err;
  const double n = static_cast<double>(table_->num_rows());
  for (const auto& q : queries) {
    const double truth = ExecuteSelectivity(*table_, q) * n;
    naru_err.Add(QError(nar.EstimateSelectivity(q) * n, truth));
    indep_err.Add(QError(indep.EstimateSelectivity(q) * n, truth));
  }
  // Tail (95th percentile) must be clearly better than independence.
  EXPECT_LT(naru_err.Quantile(0.95), indep_err.Quantile(0.95));
  // Median in the paper is ~1.0x; allow slack at this miniature scale.
  EXPECT_LT(naru_err.Quantile(0.5), 4.0);
}

TEST_F(TrainedNaruTest, OutOfDistributionQueriesNearZero) {
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 1000;
  NaruEstimator nar(model_, ncfg, model_->SizeBytes());
  WorkloadConfig wcfg;
  wcfg.num_queries = 40;
  wcfg.min_filters = 8;
  wcfg.max_filters = 11;
  wcfg.out_of_distribution = true;
  wcfg.seed = 63;
  QuantileSketch errs;
  const double n = static_cast<double>(table_->num_rows());
  for (const auto& q : GenerateWorkload(*table_, wcfg)) {
    const double truth = ExecuteSelectivity(*table_, q) * n;
    errs.Add(QError(nar.EstimateSelectivity(q) * n, truth));
  }
  // The model learns near-zero mass off-distribution (Table 5 behaviour).
  EXPECT_LT(errs.Quantile(0.5), 3.0);
  EXPECT_LT(errs.Quantile(1.0), 500.0);
}

TEST_F(TrainedNaruTest, EnumerationAutoFallback) {
  // A query whose region is tiny must go through exact enumeration and
  // still produce a sane answer.
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 10000000;
  NaruEstimator nar(model_, ncfg, model_->SizeBytes());
  std::vector<Predicate> preds;
  for (size_t c = 0; c < table_->num_columns(); ++c) {
    preds.push_back(
        Predicate{c, CompareOp::kEq, table_->column(c).code(3), 0, {}});
  }
  Query q(*table_, preds);
  ASSERT_LE(q.Log10RegionSize(), 1e-9);  // single point
  const double sel = nar.EstimateSelectivity(q);
  EXPECT_GE(sel, 0.0);
  EXPECT_LE(sel, 1.0);
}

TEST(Integration, RefreshRecoversFromDrift) {
  // Miniature Table 8: train on partition 1, ingest partition 2; the
  // refreshed model must beat the stale model on queries over new data.
  Table full = MakeDmvLike(16000, 71, /*num_partitions=*/2);
  Table part1 = full.Slice(0, 8000, full.num_columns());
  Table part2 = full.Slice(8000, 16000, full.num_columns());

  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {64, 64};
  mcfg.encoder.embed_dim = 16;
  mcfg.seed = 6;
  MadeModel stale(Domains(full), mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 10;
  tcfg.batch_size = 256;
  Trainer stale_trainer(&stale, tcfg);
  stale_trainer.Train(part1);

  // Refresh per §4.1/§6.7.3: fine-tune on samples from the *updated*
  // relation (partition 1 ∪ partition 2), not only on the new rows --
  // tuning on the delta alone forgets the old partitions.
  MadeModel refreshed(Domains(full), mcfg);
  Trainer fresh_trainer(&refreshed, tcfg);
  fresh_trainer.Train(part1);
  fresh_trainer.FineTune(full, /*passes=*/3);

  WorkloadConfig wcfg;
  wcfg.num_queries = 50;
  wcfg.min_filters = 3;
  wcfg.max_filters = 6;
  wcfg.seed = 73;
  const auto queries = GenerateWorkload(full, wcfg);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 1200;
  NaruEstimator est_stale(&stale, ncfg, 0, "stale");
  NaruEstimator est_fresh(&refreshed, ncfg, 0, "fresh");

  const double n = static_cast<double>(full.num_rows());
  double stale_log_err = 0;
  double fresh_log_err = 0;
  for (const auto& q : queries) {
    const double truth = ExecuteSelectivity(full, q) * n;
    stale_log_err +=
        std::log(QError(est_stale.EstimateSelectivity(q) * n, truth));
    fresh_log_err +=
        std::log(QError(est_fresh.EstimateSelectivity(q) * n, truth));
  }
  EXPECT_LT(fresh_log_err, stale_log_err);
}

TEST(Integration, SaveLoadServesIdenticalEstimates) {
  Table t = MakeConvivaALike(4000, 81);
  std::vector<size_t> domains = Domains(t);
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {32, 32};
  mcfg.encoder.embed_dim = 8;
  mcfg.seed = 8;
  MadeModel a(domains, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 2;
  Trainer trainer(&a, tcfg);
  trainer.Train(t);

  const std::string path = testing::TempDir() + "/naru_integ_model.bin";
  ASSERT_TRUE(a.Save(path).ok());
  MadeModel b(domains, mcfg);
  ASSERT_TRUE(b.Load(path).ok());

  WorkloadConfig wcfg;
  wcfg.num_queries = 10;
  wcfg.seed = 83;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = 400;
    ncfg.sampler_seed = 55;  // same sampler seed -> same random draws
    NaruEstimator ea(&a, ncfg, 0, "a");
    NaruEstimator eb(&b, ncfg, 0, "b");
    EXPECT_NEAR(ea.EstimateSelectivity(q), eb.EstimateSelectivity(q), 1e-9);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naru
