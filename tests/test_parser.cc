// Tests for the WHERE-clause parser: grammar coverage, literal-to-code
// semantics (present and absent literals, all value types), equivalence
// with hand-built predicates via the scan executor, and error paths.
#include <gtest/gtest.h>

#include "data/table.h"
#include "query/compound.h"
#include "query/executor.h"
#include "query/parser.h"

namespace naru {
namespace {

// city (string), year (int, gaps: 2000,2005,2010), score (double).
Table MakeTypedTable() {
  TableBuilder b("typed");
  std::vector<Value> cities, years, scores;
  const char* names[] = {"amsterdam", "berlin", "chicago", "denver"};
  for (int i = 0; i < 40; ++i) {
    cities.emplace_back(std::string(names[i % 4]));
    years.emplace_back(static_cast<int64_t>(2000 + 5 * (i % 3)));
    scores.emplace_back(0.5 * (i % 5));
  }
  b.AddValueColumn("city", cities);
  b.AddValueColumn("year", years);
  b.AddValueColumn("score", scores);
  return b.Build();
}

// Parsed clause and hand-built predicates must select identical rows.
void ExpectSameRows(const Table& t, const std::string& clause,
                    const std::vector<Predicate>& expected) {
  auto parsed = ParseWhere(t, clause);
  ASSERT_TRUE(parsed.ok()) << clause << ": " << parsed.status().ToString();
  Query manual(t, expected);
  EXPECT_EQ(ExecuteCount(t, parsed.ValueOrDie()), ExecuteCount(t, manual))
      << clause;
}

TEST(Parser, EqualityAndComparisons) {
  Table t = MakeTypedTable();
  const size_t year = t.ColumnIndex("year").ValueOrDie();
  const int32_t c2005 =
      t.column(year).dict().CodeFor(Value(int64_t{2005})).ValueOrDie();

  ExpectSameRows(t, "year = 2005", {{year, CompareOp::kEq, c2005}});
  ExpectSameRows(t, "year != 2005", {{year, CompareOp::kNeq, c2005}});
  ExpectSameRows(t, "year <> 2005", {{year, CompareOp::kNeq, c2005}});
  ExpectSameRows(t, "year <= 2005", {{year, CompareOp::kLe, c2005}});
  ExpectSameRows(t, "year < 2005", {{year, CompareOp::kLt, c2005}});
  ExpectSameRows(t, "year >= 2005", {{year, CompareOp::kGe, c2005}});
  ExpectSameRows(t, "year > 2005", {{year, CompareOp::kGt, c2005}});
}

TEST(Parser, StringLiteralsQuotedAndBare) {
  Table t = MakeTypedTable();
  const size_t city = t.ColumnIndex("city").ValueOrDie();
  const int32_t berlin =
      t.column(city).dict().CodeFor(Value(std::string("berlin"))).ValueOrDie();
  ExpectSameRows(t, "city = 'berlin'", {{city, CompareOp::kEq, berlin}});
  ExpectSameRows(t, "city = \"berlin\"", {{city, CompareOp::kEq, berlin}});
  ExpectSameRows(t, "city = berlin", {{city, CompareOp::kEq, berlin}});
}

TEST(Parser, ConjunctionsAndCaseInsensitiveKeywords) {
  Table t = MakeTypedTable();
  auto q = ParseWhere(t, "city = 'berlin' and year >= 2005 AND score < 1.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.ValueOrDie().NumFilteredColumns(), 3u);
  const int64_t n = ExecuteCount(t, q.ValueOrDie());
  EXPECT_GT(n, 0);
  EXPECT_LT(n, static_cast<int64_t>(t.num_rows()));
}

TEST(Parser, BetweenMapsAbsentBoundsExactly) {
  Table t = MakeTypedTable();
  // Years present: 2000, 2005, 2010. BETWEEN 2001 AND 2009 == exactly 2005.
  auto q = ParseWhere(t, "year BETWEEN 2001 AND 2009");
  ASSERT_TRUE(q.ok());
  const size_t year = t.ColumnIndex("year").ValueOrDie();
  const int32_t c2005 =
      t.column(year).dict().CodeFor(Value(int64_t{2005})).ValueOrDie();
  Query manual(t, {{year, CompareOp::kEq, c2005}});
  EXPECT_EQ(ExecuteCount(t, q.ValueOrDie()), ExecuteCount(t, manual));

  // An inverted/vacuous BETWEEN selects nothing.
  auto empty = ParseWhere(t, "year BETWEEN 2006 AND 2009");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(ExecuteCount(t, empty.ValueOrDie()), 0);
}

TEST(Parser, InListSkipsAbsentLiterals) {
  Table t = MakeTypedTable();
  auto q = ParseWhere(t, "city IN ('berlin', 'oslo', 'denver')");
  ASSERT_TRUE(q.ok());
  // oslo is absent: matches exactly berlin + denver rows (20 of 40).
  EXPECT_EQ(ExecuteCount(t, q.ValueOrDie()), 20);

  auto none = ParseWhere(t, "city IN ('oslo')");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(ExecuteCount(t, none.ValueOrDie()), 0);
}

TEST(Parser, AbsentLiteralSemantics) {
  Table t = MakeTypedTable();
  // Equality on an absent value: selectivity exactly 0 (OOD behaviour).
  auto zero = ParseWhere(t, "year = 2003");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(ExecuteCount(t, zero.ValueOrDie()), 0);

  // != absent value: everything.
  auto all = ParseWhere(t, "year != 2003");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(ExecuteCount(t, all.ValueOrDie()),
            static_cast<int64_t>(t.num_rows()));

  // Range ops on absent values: exact ordered-domain semantics.
  auto le = ParseWhere(t, "year <= 2003");    // == year = 2000
  auto gt = ParseWhere(t, "year > 2003");     // == year >= 2005
  ASSERT_TRUE(le.ok() && gt.ok());
  EXPECT_EQ(ExecuteCount(t, le.ValueOrDie()) + ExecuteCount(t, gt.ValueOrDie()),
            static_cast<int64_t>(t.num_rows()));
}

TEST(Parser, DoubleColumnLiterals) {
  Table t = MakeTypedTable();
  // scores: 0, 0.5, 1.0, 1.5, 2.0 (8 rows each).
  auto q = ParseWhere(t, "score >= 1.0");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExecuteCount(t, q.ValueOrDie()), 24);
  auto mid = ParseWhere(t, "score > 0.7 AND score < 1.7");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(ExecuteCount(t, mid.ValueOrDie()), 16);  // 1.0 and 1.5
}

TEST(Parser, EmptyClauseMatchesEverything) {
  Table t = MakeTypedTable();
  auto q = ParseWhere(t, "   ");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.ValueOrDie().NumFilteredColumns(), 0u);
  EXPECT_EQ(ExecuteCount(t, q.ValueOrDie()),
            static_cast<int64_t>(t.num_rows()));
}

TEST(Parser, MultiplePredicatesOnOneColumnIntersect) {
  Table t = MakeTypedTable();
  auto q = ParseWhere(t, "year >= 2005 AND year <= 2005");
  ASSERT_TRUE(q.ok());
  auto eq = ParseWhere(t, "year = 2005");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(ExecuteCount(t, q.ValueOrDie()),
            ExecuteCount(t, eq.ValueOrDie()));
}

TEST(Parser, ErrorPaths) {
  Table t = MakeTypedTable();
  // Unknown column.
  EXPECT_FALSE(ParseWhere(t, "altitude = 3").ok());
  // Missing literal.
  EXPECT_FALSE(ParseWhere(t, "year =").ok());
  // Missing operator.
  EXPECT_FALSE(ParseWhere(t, "year 2005").ok());
  // Dangling AND.
  EXPECT_FALSE(ParseWhere(t, "year = 2005 AND").ok());
  // Missing AND between terms.
  EXPECT_FALSE(ParseWhere(t, "year = 2005 city = berlin").ok());
  // Unterminated string.
  EXPECT_FALSE(ParseWhere(t, "city = 'berl").ok());
  // Bad IN syntax.
  EXPECT_FALSE(ParseWhere(t, "city IN berlin").ok());
  EXPECT_FALSE(ParseWhere(t, "city IN ('berlin'").ok());
  // Stray characters.
  EXPECT_FALSE(ParseWhere(t, "year = 2005 ; drop table").ok());
  // Non-numeric literal on an int column.
  EXPECT_FALSE(ParseWhere(t, "year = berlin").ok());
  // BETWEEN missing AND.
  EXPECT_FALSE(ParseWhere(t, "year BETWEEN 2000 2010").ok());
}

TEST(Parser, DisjunctionsSplitOnOr) {
  Table t = MakeTypedTable();
  auto d = ParseDisjunction(
      t, "city = 'berlin' AND year >= 2005 OR score > 1.5 OR city = denver");
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_EQ(d.ValueOrDie().size(), 3u);
  EXPECT_EQ(d.ValueOrDie()[0].NumFilteredColumns(), 2u);
  EXPECT_EQ(d.ValueOrDie()[1].NumFilteredColumns(), 1u);
  EXPECT_EQ(d.ValueOrDie()[2].NumFilteredColumns(), 1u);
}

TEST(Parser, DisjunctionMatchesManualUnionCount) {
  Table t = MakeTypedTable();
  auto d = ParseDisjunction(t, "city = 'berlin' OR year = 2010");
  ASSERT_TRUE(d.ok());
  // Manual union count by scan.
  const size_t city = t.ColumnIndex("city").ValueOrDie();
  const size_t year = t.ColumnIndex("year").ValueOrDie();
  int64_t expected = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const bool a =
        t.column(city).dict().ValueFor(t.column(city).code(r)).AsString() ==
        "berlin";
    const bool b =
        t.column(year).dict().ValueFor(t.column(year).code(r)).AsInt() ==
        2010;
    expected += (a || b);
  }
  const double sel =
      ExecuteDisjunctionSelectivity(t, d.ValueOrDie());
  EXPECT_EQ(static_cast<int64_t>(sel * static_cast<double>(t.num_rows()) +
                                 0.5),
            expected);
}

TEST(Parser, SingleConjunctionViaDisjunctionApi) {
  Table t = MakeTypedTable();
  auto d = ParseDisjunction(t, "year = 2005");
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.ValueOrDie().size(), 1u);
  auto empty = ParseDisjunction(t, "");
  ASSERT_TRUE(empty.ok());
  ASSERT_EQ(empty.ValueOrDie().size(), 1u);
  EXPECT_EQ(empty.ValueOrDie()[0].NumFilteredColumns(), 0u);
}

TEST(Parser, OrErrorPaths) {
  Table t = MakeTypedTable();
  // ParseWhere (conjunction-only API) rejects OR.
  EXPECT_FALSE(ParseWhere(t, "year = 2005 OR year = 2010").ok());
  // Dangling OR.
  EXPECT_FALSE(ParseDisjunction(t, "year = 2005 OR").ok());
  // OR with missing left term.
  EXPECT_FALSE(ParseDisjunction(t, "OR year = 2005").ok());
}

TEST(Parser, WorksWithWildcardsAndIsComposable) {
  Table t = MakeTypedTable();
  auto q = ParseWhere(t, "score BETWEEN 0.5 AND 1.5 AND city != 'chicago'");
  ASSERT_TRUE(q.ok());
  int64_t manual = 0;
  const size_t city = t.ColumnIndex("city").ValueOrDie();
  const size_t score = t.ColumnIndex("score").ValueOrDie();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const double s =
        t.column(score).dict().ValueFor(t.column(score).code(r)).AsDouble();
    const std::string c =
        t.column(city).dict().ValueFor(t.column(city).code(r)).AsString();
    manual += (s >= 0.5 && s <= 1.5 && c != "chicago");
  }
  EXPECT_EQ(ExecuteCount(t, q.ValueOrDie()), manual);
}

}  // namespace
}  // namespace naru
