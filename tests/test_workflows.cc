// End-to-end workflow tests that cut across modules the way a user would:
// drift + fine-tune recovery on two architectures, parsed disjunctions
// over the Bayes-net estimator, multi-order ensembles driven by parsed
// queries, and estimator behaviour right after serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/ensemble.h"
#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "core/transformer.h"
#include "data/datasets.h"
#include "estimator/bayesnet.h"
#include "query/compound.h"
#include "query/executor.h"
#include "query/parser.h"

namespace naru {
namespace {

double QErr(double est_card, double true_card) {
  const double a = std::max(est_card, 1.0);
  const double b = std::max(true_card, 1.0);
  return std::max(a, b) / std::min(a, b);
}

// Two partitions with shifted distributions: part B flips the skew of the
// first column and re-correlates the second.
Table MakePartition(size_t rows, uint64_t seed, bool shifted) {
  Rng rng(seed);
  std::vector<int64_t> a(rows), b(rows), c(rows);
  for (size_t r = 0; r < rows; ++r) {
    const int64_t base = static_cast<int64_t>(rng.UniformInt(8));
    a[r] = shifted ? 7 - base : base;
    b[r] = (a[r] + static_cast<int64_t>(rng.UniformInt(3))) % 8;
    c[r] = static_cast<int64_t>(rng.UniformInt(5));
  }
  TableBuilder tb("part");
  tb.AddIntColumn("a", a);
  tb.AddIntColumn("b", b);
  tb.AddIntColumn("c", c);
  return tb.Build();
}

template <typename Model>
void DriftAndRecover(Model* model, const char* tag) {
  Table part1 = MakePartition(3000, 3, /*shifted=*/false);
  Table part2 = MakePartition(3000, 5, /*shifted=*/true);

  TrainerConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 256;
  tcfg.lr = 5e-3;
  Trainer trainer(model, tcfg);
  trainer.Train(part1);

  // Combined relation after the shifted ingest.
  Table all = MakePartition(3000, 3, false);
  ASSERT_TRUE(all.AppendRows(MakePartition(3000, 5, true)).ok());

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 1500;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model, ncfg, 0, tag);

  // A query centered in the shifted region.
  Query q(all, {{0, CompareOp::kGe, 6}, {1, CompareOp::kLe, 3}});
  const double truth =
      ExecuteSelectivity(all, q) * static_cast<double>(all.num_rows());
  ASSERT_GT(truth, 0.0);

  const double stale =
      est.EstimateSelectivity(q) * static_cast<double>(all.num_rows());
  trainer.FineTune(part2, /*passes=*/6);
  const double fresh =
      est.EstimateSelectivity(q) * static_cast<double>(all.num_rows());

  // Stale model underestimates the newly-dense region; refresh recovers.
  EXPECT_LT(QErr(fresh, truth), QErr(stale, truth) + 0.5) << tag;
  EXPECT_LT(QErr(fresh, truth), 2.5) << tag;
}

TEST(Workflow, DriftFineTuneRecoveryMade) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {48, 48};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = 7;
  MadeModel model({8, 8, 5}, cfg);
  DriftAndRecover(&model, "made");
}

TEST(Workflow, DriftFineTuneRecoveryTransformer) {
  TransformerModel::Config cfg;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ffn_hidden = 64;
  cfg.seed = 7;
  TransformerModel model({8, 8, 5}, cfg);
  DriftAndRecover(&model, "transformer");
}

TEST(Workflow, ParsedDisjunctionOverBayesNet) {
  Table t = MakeRandomTable(4000, {6, 8, 5}, 11, /*skew=*/1.1);
  // Name-addressable columns for the parser.
  TableBuilder tb("named");
  std::vector<int64_t> c0, c1, c2;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    c0.push_back(t.column(0).code(r));
    c1.push_back(t.column(1).code(r));
    c2.push_back(t.column(2).code(r));
  }
  tb.AddIntColumn("x", c0);
  tb.AddIntColumn("y", c1);
  tb.AddIntColumn("z", c2);
  Table named = tb.Build();

  BayesNetEstimator bn(named);
  auto disjuncts =
      ParseDisjunction(named, "x <= 2 AND y >= 4 OR z = 1 OR x = 5");
  ASSERT_TRUE(disjuncts.ok()) << disjuncts.status().ToString();

  const double est = EstimateDisjunction(&bn, disjuncts.ValueOrDie());
  const double truth =
      ExecuteDisjunctionSelectivity(named, disjuncts.ValueOrDie());
  ASSERT_GT(truth, 0.0);
  EXPECT_LT(QErr(est * named.num_rows(), truth * named.num_rows()), 1.6);
}

TEST(Workflow, EnsembleAnswersParsedQueries) {
  Table t = MakeRandomTable(2500, {7, 9, 6}, 13, /*skew=*/1.0);
  TableBuilder tb("named");
  std::vector<int64_t> c0, c1, c2;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    c0.push_back(t.column(0).code(r));
    c1.push_back(t.column(1).code(r));
    c2.push_back(t.column(2).code(r));
  }
  tb.AddIntColumn("a", c0);
  tb.AddIntColumn("b", c1);
  tb.AddIntColumn("c", c2);
  Table named = tb.Build();

  MultiOrderConfig cfg;
  cfg.num_orders = 2;
  cfg.model.hidden_sizes = {48, 48};
  cfg.model.encoder.onehot_threshold = 16;
  cfg.trainer.epochs = 12;
  cfg.trainer.batch_size = 256;
  cfg.trainer.lr = 5e-3;
  cfg.estimator.num_samples = 800;
  cfg.estimator.enumeration_threshold = 0;
  MultiOrderEnsemble ens(named, cfg);

  auto q = ParseWhere(named, "a >= 2 AND b <= 5");
  ASSERT_TRUE(q.ok());
  const double truth = ExecuteSelectivity(named, q.ValueOrDie());
  ASSERT_GT(truth, 0.0);
  const double est = ens.EstimateSelectivity(q.ValueOrDie());
  EXPECT_LT(QErr(est * named.num_rows(), truth * named.num_rows()), 2.0);
}

TEST(Workflow, SavedModelServesIdenticalEstimates) {
  Table t = MakeRandomTable(1500, {6, 7, 4}, 17, /*skew=*/0.9);
  const std::vector<size_t> domains = {t.column(0).DomainSize(),
                                       t.column(1).DomainSize(),
                                       t.column(2).DomainSize()};
  MadeModel::Config cfg;
  cfg.hidden_sizes = {32, 32};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = 19;
  MadeModel model(domains, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 6;
  Trainer(&model, tcfg).Train(t);

  const std::string path = testing::TempDir() + "/naru_workflow_model.bin";
  ASSERT_TRUE(model.Save(path).ok());
  MadeModel reloaded(domains, cfg);
  ASSERT_TRUE(reloaded.Load(path).ok());

  Query q(t, {{0, CompareOp::kLe, 3}, {2, CompareOp::kGe, 1}});
  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 600;
  ncfg.sampler_seed = 23;  // identical sampler seeds => identical draws
  NaruEstimator a(&model, ncfg, 0, "orig");
  NaruEstimator b(&reloaded, ncfg, 0, "reload");
  EXPECT_NEAR(a.EstimateSelectivity(q), b.EstimateSelectivity(q), 1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naru
