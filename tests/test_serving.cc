// Tests for the batched serving path (src/serve): EstimateBatch must be a
// pure execution-strategy change — bit-identical to the sequential
// per-query path for a fixed seed, invariant to thread count and batch
// size, and free of cross-query state leaks through the shared workspace
// pool and caches.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/ensemble.h"
#include "core/enumerator.h"
#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/oracle_model.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "query/workload.h"
#include "serve/inference_engine.h"
#include "serve/lru_cache.h"
#include "serve/query_key.h"
#include "serve/request.h"
#include "util/env_config.h"

namespace naru {
namespace {

Table SmallTable(uint64_t seed) {
  return MakeRandomTable(600, {7, 5, 9, 4, 6}, seed, /*skew=*/1.0);
}

std::unique_ptr<MadeModel> SmallTrainedModel(const Table& table,
                                             uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = seed;
  auto model = std::make_unique<MadeModel>(
      std::vector<size_t>{7, 5, 9, 4, 6}, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 128;
  Trainer(model.get(), tcfg).Train(table);
  return model;
}

// A serving workload exercising every engine path: sampled walks,
// trailing-wildcard exits, leading-only marginals, empty regions and
// duplicates.
std::vector<Query> ServingQueries(const Table& table, uint64_t seed) {
  WorkloadConfig wcfg;
  wcfg.num_queries = 24;
  wcfg.min_filters = 1;
  wcfg.max_filters = 5;
  wcfg.seed = seed;
  std::vector<Query> queries = GenerateWorkload(table, wcfg);
  const size_t n = table.num_columns();
  std::vector<ValueSet> all;
  for (size_t c = 0; c < n; ++c) {
    all.push_back(ValueSet::All(table.column(c).DomainSize()));
  }
  queries.emplace_back(all);  // all wildcards
  auto lead = all;
  lead[0] = ValueSet::Interval(table.column(0).DomainSize(), 1, 3);
  queries.emplace_back(lead);  // single leading filter
  auto lead2 = all;
  lead2[0] = ValueSet::Interval(table.column(0).DomainSize(), 1, 3);
  queries.emplace_back(lead2);  // duplicate of the leading-only query
  auto empty = all;
  empty[2] = ValueSet::Empty(table.column(2).DomainSize());
  queries.emplace_back(empty);  // empty region
  queries.push_back(queries[0]);  // duplicate of a sampled query
  return queries;
}

TEST(QueryKey, DistinguishesRegionsExactly) {
  EXPECT_EQ(RegionKey(ValueSet::All(10)), RegionKey(ValueSet::All(12)));
  EXPECT_EQ(RegionKey(ValueSet::Interval(10, 2, 5)),
            RegionKey(ValueSet::Interval(10, 2, 5)));
  EXPECT_NE(RegionKey(ValueSet::Interval(10, 2, 5)),
            RegionKey(ValueSet::Interval(10, 2, 6)));
  EXPECT_NE(RegionKey(ValueSet::Set(10, {2, 3})),
            RegionKey(ValueSet::Set(10, {2, 4})));
  EXPECT_NE(RegionKey(ValueSet::Interval(10, 2, 3)),
            RegionKey(ValueSet::Set(10, {2, 3})));

  Query a({ValueSet::Interval(10, 2, 5), ValueSet::All(4)});
  Query b({ValueSet::Interval(10, 2, 5), ValueSet::All(4)});
  Query c({ValueSet::Interval(10, 2, 4), ValueSet::All(4)});
  EXPECT_EQ(QueryKey(a), QueryKey(b));
  EXPECT_NE(QueryKey(a), QueryKey(c));
}

TEST(InferenceEngine, BatchMatchesSequentialBitForBit) {
  Table table = SmallTable(3);
  auto model = SmallTrainedModel(table, 3);
  const auto queries = ServingQueries(table, 31);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 50;  // exercise the enumeration path too
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<double> sequential;
  for (const auto& q : queries) {
    sequential.push_back(est.EstimateSelectivity(q));
  }

  // Through an explicit engine...
  InferenceEngine engine(InferenceEngineConfig{.num_threads = 3});
  std::vector<double> batched;
  engine.EstimateBatch(&est, queries, &batched);
  ASSERT_EQ(batched.size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(batched[i], sequential[i]) << "query " << i;
  }

  // ...and through the estimator's own EstimateBatch override.
  std::vector<double> via_estimator;
  est.EstimateBatch(queries, &via_estimator);
  EXPECT_EQ(via_estimator, sequential);

  // The default Estimator::EstimateBatch loop agrees as well.
  std::vector<double> via_base;
  est.Estimator::EstimateBatch(queries, &via_base);
  EXPECT_EQ(via_base, sequential);
}

TEST(InferenceEngine, ThreadCountInvariance) {
  Table table = SmallTable(5);
  auto model = SmallTrainedModel(table, 5);
  const auto queries = ServingQueries(table, 57);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 300;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<std::vector<double>> results;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    InferenceEngine engine(InferenceEngineConfig{.num_threads = threads});
    std::vector<double> out;
    engine.EstimateBatch(&est, queries, &out);
    results.push_back(std::move(out));
  }
  for (size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[k], results[0]) << "thread config " << k;
  }
}

TEST(InferenceEngine, WorkspaceReuseDoesNotLeakAcrossBatches) {
  Table table = SmallTable(7);
  auto model = SmallTrainedModel(table, 7);
  const auto queries = ServingQueries(table, 91);
  const std::vector<Query> batch_a(queries.begin(), queries.begin() + 10);
  const std::vector<Query> batch_b(queries.begin() + 10, queries.end());

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  // Caching off: a repeated batch must be recomputed through the reused
  // workspaces and still match a fresh estimator exactly.
  InferenceEngineConfig ecfg;
  ecfg.num_threads = 2;
  ecfg.enable_cache = false;
  InferenceEngine engine(ecfg);

  std::vector<double> first_a, b_out, second_a;
  engine.EstimateBatch(&est, batch_a, &first_a);
  engine.EstimateBatch(&est, batch_b, &b_out);
  engine.EstimateBatch(&est, batch_a, &second_a);
  EXPECT_EQ(second_a, first_a);

  NaruEstimator fresh(model.get(), ncfg, 0);
  std::vector<double> fresh_a;
  for (const auto& q : batch_a) fresh_a.push_back(fresh.EstimateSelectivity(q));
  EXPECT_EQ(second_a, fresh_a);

  // The pool recycles buffers instead of growing per batch: three batches
  // may never need more workspaces than the engine has runners.
  EXPECT_LE(engine.workspace_pool()->total_created(),
            engine.num_threads() + 1);
  EXPECT_EQ(engine.workspace_pool()->available(),
            engine.workspace_pool()->total_created());
}

TEST(InferenceEngine, CacheHitsAreExactAndCounted) {
  Table table = SmallTable(11);
  auto model = SmallTrainedModel(table, 11);
  const auto queries = ServingQueries(table, 13);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  InferenceEngine engine(InferenceEngineConfig{.num_threads = 1});
  std::vector<double> first, second;
  engine.EstimateBatch(&est, queries, &first);
  const auto cold = engine.stats();
  engine.EstimateBatch(&est, queries, &second);
  const auto warm = engine.stats();

  EXPECT_EQ(second, first);
  // In-batch duplicates are coalesced before dispatch, so the cold pass
  // computes each distinct query exactly once without touching the memo;
  // the workload's 29 queries contain 2 handcrafted duplicates.
  EXPECT_EQ(cold.memo_hits, 0u);
  EXPECT_LE(cold.sampled + cold.exact_shortcuts + cold.enumerated,
            queries.size() - 2);
  // The warm pass (coalesced again) memo-hits every distinct query the
  // cold pass computed, except the empty-region one, which short-circuits
  // before the cache is even consulted — on both passes.
  EXPECT_EQ(warm.memo_hits - cold.memo_hits,
            cold.sampled + cold.exact_shortcuts + cold.enumerated - 1);
  EXPECT_EQ(warm.exact_shortcuts - cold.exact_shortcuts, 1u);
  EXPECT_EQ(warm.sampled, cold.sampled);
}

TEST(InferenceEngine, LruEvictionNeverChangesAnEstimate) {
  Table table = SmallTable(23);
  auto model = SmallTrainedModel(table, 23);
  const auto queries = ServingQueries(table, 77);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  // A budget that fits only a couple of entries: serving the workload
  // repeatedly churns the caches through constant eviction.
  InferenceEngineConfig ecfg;
  ecfg.num_threads = 2;
  ecfg.cache_budget_bytes = 2 * (64 + LruResultCache::kEntryOverheadBytes);
  InferenceEngine tiny(ecfg);

  std::vector<double> first, second, third;
  tiny.EstimateBatch(&est, queries, &first);
  tiny.EstimateBatch(&est, queries, &second);
  tiny.EstimateBatch(&est, queries, &third);
  EXPECT_EQ(second, first);
  EXPECT_EQ(third, first);

  // An unconstrained engine and the sequential path agree bit-for-bit:
  // an evicted entry recomputes to the identical value.
  InferenceEngine roomy(InferenceEngineConfig{.num_threads = 2});
  std::vector<double> cached;
  roomy.EstimateBatch(&est, queries, &cached);
  EXPECT_EQ(cached, first);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(first[i], est.EstimateSelectivity(queries[i])) << "query " << i;
  }

  const auto tiny_stats = tiny.stats();
  const auto roomy_stats = roomy.stats();
  EXPECT_GT(tiny_stats.memo_evictions, 0u);
  EXPECT_LE(tiny_stats.memo_bytes, ecfg.cache_budget_bytes);
  EXPECT_LE(tiny_stats.marginal_bytes, ecfg.cache_budget_bytes);
  EXPECT_EQ(roomy_stats.memo_evictions, 0u);
  EXPECT_GT(roomy_stats.memo_entries, 0u);
  EXPECT_GT(roomy_stats.memo_bytes, 0u);
}

// The batch path builds each query's canonical key exactly once and reuses
// it for both duplicate coalescing and the memo: miss counters must line
// up one-to-one with the computed distinct queries, and duplicates must
// never reach the cache at all.
TEST(InferenceEngine, CoalescingAndMemoShareOneKeyedPass) {
  Table table = SmallTable(31);
  auto model = SmallTrainedModel(table, 31);
  const auto queries = ServingQueries(table, 83);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  InferenceEngine engine(InferenceEngineConfig{.num_threads = 2});
  std::vector<double> out;
  engine.EstimateBatch(&est, queries, &out);
  const auto cold = engine.stats();

  // Every computed distinct query consulted the memo exactly once and
  // missed; the empty-region query short-circuits before the cache, so it
  // is the one compute (an exact shortcut) without a matching miss.
  EXPECT_EQ(cold.memo_misses,
            cold.sampled + cold.enumerated + cold.exact_shortcuts - 1);
  EXPECT_EQ(cold.memo_hits, 0u);
  // The workload carries duplicates; none of them reached the cache.
  EXPECT_LT(cold.memo_misses + 1, queries.size());

  engine.EstimateBatch(&est, queries, &out);
  const auto warm = engine.stats();
  EXPECT_EQ(warm.memo_misses, cold.memo_misses);  // warm pass misses nothing
  EXPECT_EQ(warm.memo_hits, cold.memo_misses);    // and hits every miss
}

TEST(InferenceEngine, MixedBatchGroupsByEstimator) {
  Table table = SmallTable(17);
  auto model_a = SmallTrainedModel(table, 17);
  auto model_b = SmallTrainedModel(table, 18);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est_a(model_a.get(), ncfg, 0, "A");
  NaruEstimator est_b(model_b.get(), ncfg, 0, "B");

  const auto queries = ServingQueries(table, 23);
  std::vector<NaruEstimator*> ests;
  for (size_t i = 0; i < queries.size(); ++i) {
    ests.push_back(i % 2 == 0 ? &est_a : &est_b);
  }

  InferenceEngine engine(InferenceEngineConfig{.num_threads = 2});
  std::vector<double> mixed;
  engine.EstimateMixedBatch(ests, queries, &mixed);

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(mixed[i], ests[i]->EstimateSelectivity(queries[i]))
        << "query " << i;
  }
}

TEST(InferenceEngine, EstimatorsSharingOneModelDoNotShareMemoEntries) {
  Table table = SmallTable(19);
  auto model = SmallTrainedModel(table, 19);

  NaruEstimatorConfig small_cfg;
  small_cfg.num_samples = 100;
  small_cfg.enumeration_threshold = 0;
  NaruEstimatorConfig big_cfg = small_cfg;
  big_cfg.num_samples = 800;
  NaruEstimator small_est(model.get(), small_cfg, 0, "Naru-100");
  NaruEstimator big_est(model.get(), big_cfg, 0, "Naru-800");

  const auto queries = ServingQueries(table, 47);
  InferenceEngine engine(InferenceEngineConfig{.num_threads = 2});
  std::vector<double> small_out, big_out;
  engine.EstimateBatch(&small_est, queries, &small_out);
  engine.EstimateBatch(&big_est, queries, &big_out);

  // The second batch must not inherit the first estimator's memoized
  // sampled values — it uses a different path count over the same model.
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(big_out[i], big_est.EstimateSelectivity(queries[i]))
        << "query " << i;
  }

  // The marginal-mass cache, by contrast, IS config-independent and shared
  // across the two estimators: the workload's leading-only query misses
  // big_est's memo (different key) but hits the mass small_est cached.
  EXPECT_GE(engine.stats().marginal_hits, 1u);
}

// Satellite of the plan-layer refactor: randomized batches with mixed
// leading-wildcard runs must be bit-identical to the per-query sequential
// path across thread counts, shard sizes, and group layouts — with the
// plan actually exercised (groups compiled, prefix columns shared).
TEST(InferenceEngine, PrefixSharingBitIdenticalAcrossThreadsAndShards) {
  Table table = SmallTable(43);
  auto model = SmallTrainedModel(table, 43);

  // Mixed runs: half the workload keeps >= 2 leading wildcard columns.
  WorkloadConfig wcfg;
  wcfg.num_queries = 64;
  wcfg.min_filters = 1;
  wcfg.max_filters = 3;
  wcfg.leading_wildcards = 2;
  wcfg.leading_wildcard_fraction = 0.5;
  wcfg.seed = 97;
  const std::vector<Query> queries = GenerateWorkload(table, wcfg);

  for (const size_t shard_size : {size_t{32}, size_t{128}}) {
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = 200;
    ncfg.enumeration_threshold = 0;
    ncfg.shard_size = shard_size;
    NaruEstimator est(model.get(), ncfg, 0);

    std::vector<double> sequential;
    for (const auto& q : queries) {
      sequential.push_back(est.EstimateSelectivity(q));
    }

    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      InferenceEngineConfig ecfg;
      ecfg.num_threads = threads;
      InferenceEngine engine(ecfg);
      std::vector<double> batched;
      engine.EstimateBatch(&est, queries, &batched);
      EXPECT_EQ(batched, sequential)
          << "threads " << threads << " shard " << shard_size;

      const auto stats = engine.stats();
      EXPECT_GT(stats.planned_queries, 0u);
      EXPECT_GT(stats.plan_trees, 0u);
      EXPECT_GT(stats.plan_shared_cols, 0u);  // prefixes actually shared
      EXPECT_GT(stats.prefix_share_ratio(), 0.0);
      EXPECT_GT(stats.workspaces_created, 0u);  // satellite: pool churn
      EXPECT_EQ(stats.workspaces_created,
                engine.workspace_pool()->total_created());
    }
  }
}

// Group layout is an execution detail: splitting the same batch into
// different micro-batches (hence different plans and groupings) never
// changes an estimate, and disabling planning entirely agrees too.
TEST(InferenceEngine, PlanLayoutAndPlanDisableAreResultInvariant) {
  Table table = SmallTable(47);
  auto model = SmallTrainedModel(table, 47);

  WorkloadConfig wcfg;
  wcfg.num_queries = 32;
  wcfg.min_filters = 1;
  wcfg.max_filters = 4;
  wcfg.leading_wildcards = 3;
  wcfg.leading_wildcard_fraction = 0.6;
  wcfg.seed = 101;
  const std::vector<Query> queries = GenerateWorkload(table, wcfg);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  // One whole-batch plan (cache off so every pass recomputes).
  InferenceEngineConfig planned_cfg;
  planned_cfg.num_threads = 2;
  planned_cfg.enable_cache = false;
  InferenceEngine planned(planned_cfg);
  std::vector<double> whole;
  planned.EstimateBatch(&est, queries, &whole);
  EXPECT_GT(planned.stats().plan_batches, 0u);

  // Same queries in chunks of 5: different plans, same results.
  std::vector<double> chunked(queries.size());
  for (size_t lo = 0; lo < queries.size(); lo += 5) {
    const size_t hi = std::min(queries.size(), lo + 5);
    std::vector<Query> chunk(queries.begin() + static_cast<ptrdiff_t>(lo),
                             queries.begin() + static_cast<ptrdiff_t>(hi));
    std::vector<double> out;
    planned.EstimateBatch(&est, chunk, &out);
    for (size_t i = lo; i < hi; ++i) chunked[i] = out[i - lo];
  }
  EXPECT_EQ(chunked, whole);

  // Legacy (plan disabled) engine agrees bit-for-bit.
  InferenceEngineConfig legacy_cfg = planned_cfg;
  legacy_cfg.enable_plan = false;
  InferenceEngine legacy(legacy_cfg);
  std::vector<double> unplanned;
  legacy.EstimateBatch(&est, queries, &unplanned);
  EXPECT_EQ(unplanned, whole);
  EXPECT_EQ(legacy.stats().plan_batches, 0u);
  EXPECT_EQ(legacy.stats().planned_queries, 0u);
}

// Tentpole of the typed-API redesign: the legacy double-returning
// surfaces are thin adapters over EstimateRequest/EstimateResult, so for
// default options all three — typed, legacy, sequential — must agree
// bit-for-bit, and typed results must carry status/provenance/latency.
TEST(InferenceEngine, TypedDefaultRequestsMatchLegacyDoubleApi) {
  Table table = SmallTable(53);
  auto model = SmallTrainedModel(table, 53);
  const auto queries = ServingQueries(table, 59);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 50;  // exercise the enumeration provenance
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<double> sequential;
  std::vector<double> sequential_stderr;
  for (const auto& q : queries) {
    const EstimateResult r = est.Estimate(q);
    ASSERT_TRUE(r.ok());
    sequential.push_back(r.estimate);
    sequential_stderr.push_back(r.std_error);
  }

  InferenceEngine typed_engine(InferenceEngineConfig{.num_threads = 3});
  std::vector<EstimateRequest> requests;
  for (const auto& q : queries) requests.emplace_back(q);
  std::vector<EstimateResult> results;
  typed_engine.EstimateBatch(&est, requests, &results);

  InferenceEngine legacy_engine(InferenceEngineConfig{.num_threads = 3});
  std::vector<double> legacy;
  legacy_engine.EstimateBatch(&est, queries, &legacy);

  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "query " << i;
    EXPECT_EQ(results[i].estimate, sequential[i]) << "query " << i;
    EXPECT_EQ(results[i].estimate, legacy[i]) << "query " << i;
    EXPECT_NE(results[i].provenance, ResultProvenance::kUnknown)
        << "query " << i;
    EXPECT_GE(results[i].compute_ms, 0.0);
    // Sampled results surface the sequential path's Monte Carlo standard
    // error; exact answers report 0.
    if (results[i].provenance == ResultProvenance::kSampled ||
        results[i].provenance == ResultProvenance::kPlannedGroup) {
      EXPECT_EQ(results[i].std_error, sequential_stderr[i]) << "query " << i;
      EXPECT_EQ(results[i].samples_used, ncfg.num_samples);
    } else {
      EXPECT_EQ(results[i].samples_used, 0u) << "query " << i;
    }
  }

  // Per-provenance result counters account for every delivered result.
  const EngineStats stats = typed_engine.stats();
  EXPECT_EQ(stats.results_cache_hit + stats.results_exact +
                stats.results_enumerated + stats.results_sampled +
                stats.results_planned + stats.results_shed,
            queries.size());
  EXPECT_EQ(stats.results_shed, 0u);
}

TEST(InferenceEngine, ExpiredDeadlinesAreShedWithTypedStatus) {
  Table table = SmallTable(59);
  auto model = SmallTrainedModel(table, 59);
  const auto queries = ServingQueries(table, 61);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<EstimateRequest> requests;
  requests.emplace_back(queries[0]);
  requests.emplace_back(queries[1]);  // expired: must shed
  requests.back().options.deadline = EstimateOptions::DeadlineInMs(-10.0);
  requests.emplace_back(queries[2]);
  requests.emplace_back(queries[3]);  // generous: must NOT shed
  requests.back().options.deadline = EstimateOptions::DeadlineInMs(60000.0);

  InferenceEngine engine(InferenceEngineConfig{.num_threads = 2});
  std::vector<EstimateResult> results;
  engine.EstimateBatch(&est, requests, &results);

  EXPECT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(std::isnan(results[1].estimate));
  EXPECT_EQ(results[1].provenance, ResultProvenance::kShed);
  EXPECT_EQ(results[1].samples_used, 0u);
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
    ASSERT_TRUE(results[i].ok()) << "query " << i;
    EXPECT_EQ(results[i].estimate, est.EstimateSelectivity(queries[i]))
        << "query " << i;
  }

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, requests.size());
  EXPECT_EQ(stats.shed_deadline, 1u);
  EXPECT_EQ(stats.results_shed, 1u);

  // The sequential typed path sheds by the same rule.
  const EstimateResult direct = est.Estimate(
      queries[1], EstimateOptions{.deadline = EstimateOptions::DeadlineInMs(-1.0)});
  EXPECT_EQ(direct.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(direct.provenance, ResultProvenance::kShed);
}

// Per-request sample budgets are part of the value contract: a request
// carrying num_samples=N must be bit-identical (estimate AND std-error)
// to a dedicated estimator configured with N — through the sequential
// typed path, the planned engine, and the legacy engine route — and
// budgets must never coalesce or share memo entries with each other.
TEST(InferenceEngine, PerRequestSampleBudgetsMatchDedicatedEstimators) {
  Table table = SmallTable(61);
  auto model = SmallTrainedModel(table, 61);

  WorkloadConfig wcfg;
  wcfg.num_queries = 18;
  wcfg.min_filters = 1;
  wcfg.max_filters = 4;
  wcfg.leading_wildcards = 2;  // keep the plan's prefix sharing in play
  wcfg.leading_wildcard_fraction = 0.5;
  wcfg.seed = 103;
  const std::vector<Query> queries = GenerateWorkload(table, wcfg);

  NaruEstimatorConfig base_cfg;
  base_cfg.num_samples = 200;
  base_cfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), base_cfg, 0);

  // One reference estimator per budget (0 = the base config's 200).
  const size_t budgets[] = {0, 100, 350};
  std::vector<std::unique_ptr<NaruEstimator>> refs;
  for (const size_t budget : budgets) {
    NaruEstimatorConfig cfg = base_cfg;
    if (budget != 0) cfg.num_samples = budget;
    refs.push_back(std::make_unique<NaruEstimator>(model.get(), cfg, 0));
  }

  // A mixed-budget batch: query i asks for budgets[i % 3].
  std::vector<EstimateRequest> requests;
  for (size_t i = 0; i < queries.size(); ++i) {
    EstimateRequest req(queries[i]);
    req.options.num_samples = budgets[i % 3];
    requests.push_back(std::move(req));
  }

  for (const bool planned : {true, false}) {
    InferenceEngineConfig ecfg;
    ecfg.num_threads = 2;
    ecfg.enable_plan = planned;
    InferenceEngine engine(ecfg);
    std::vector<EstimateResult> results;
    engine.EstimateBatch(&est, requests, &results);
    for (size_t i = 0; i < queries.size(); ++i) {
      const EstimateResult want = refs[i % 3]->Estimate(queries[i]);
      ASSERT_TRUE(results[i].ok());
      EXPECT_EQ(results[i].estimate, want.estimate)
          << "query " << i << " planned " << planned;
      EXPECT_EQ(results[i].std_error, want.std_error)
          << "query " << i << " planned " << planned;
      // The sequential typed path honors the same per-request override.
      const EstimateResult direct = est.Estimate(
          queries[i], EstimateOptions{.num_samples = budgets[i % 3]});
      EXPECT_EQ(direct.estimate, want.estimate) << "query " << i;
    }

    // Budgets never share memo entries: re-serving the same mixed batch
    // hits the memo once per distinct (query, budget) pair.
    std::set<std::pair<std::string, size_t>> distinct;
    for (size_t i = 0; i < queries.size(); ++i) {
      distinct.emplace(QueryKey(queries[i]), budgets[i % 3]);
    }
    const EngineStats cold = engine.stats();
    std::vector<EstimateResult> warm_results;
    engine.EstimateBatch(&est, requests, &warm_results);
    const EngineStats warm = engine.stats();
    EXPECT_EQ(warm.memo_hits - cold.memo_hits, distinct.size())
        << "planned " << planned;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(warm_results[i].estimate, results[i].estimate);
      EXPECT_EQ(warm_results[i].provenance, ResultProvenance::kCacheHit);
    }

    // One query asked under two budgets in ONE batch must not coalesce.
    std::vector<EstimateRequest> pair;
    pair.emplace_back(queries[0]);
    pair.back().options.num_samples = 100;
    pair.emplace_back(queries[0]);
    pair.back().options.num_samples = 350;
    std::vector<EstimateResult> pair_out;
    engine.EstimateBatch(&est, pair, &pair_out);
    EXPECT_EQ(pair_out[0].estimate, refs[1]->EstimateSelectivity(queries[0]));
    EXPECT_EQ(pair_out[1].estimate, refs[2]->EstimateSelectivity(queries[0]));
  }
}

TEST(InferenceEngine, CachePolicyRestrictsCachingButNeverChangesValues) {
  Table table = SmallTable(67);
  auto model = SmallTrainedModel(table, 67);
  const auto queries = ServingQueries(table, 71);
  const Query& q = queries[0];  // a sampled-path query

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);
  const double want = est.EstimateSelectivity(q);

  InferenceEngine engine(InferenceEngineConfig{.num_threads = 1});
  const auto serve_one = [&](CachePolicy policy) {
    std::vector<EstimateRequest> reqs;
    reqs.emplace_back(q);
    reqs.back().options.cache_policy = policy;
    std::vector<EstimateResult> out;
    engine.EstimateBatch(&est, reqs, &out);
    EXPECT_EQ(out[0].estimate, want);
    return out[0];
  };

  // Bypass: no lookup, no insert — every pass recomputes.
  serve_one(CachePolicy::kBypass);
  EXPECT_EQ(engine.stats().sampled, 1u);
  EXPECT_EQ(engine.stats().memo_misses, 0u);  // bypass skipped the lookup
  serve_one(CachePolicy::kBypass);
  EXPECT_EQ(engine.stats().sampled, 2u);

  // Read-only: looks up (and misses — bypass never stored) but does not
  // pollute the cache.
  serve_one(CachePolicy::kReadOnly);
  EXPECT_EQ(engine.stats().sampled, 3u);
  EXPECT_EQ(engine.stats().memo_misses, 1u);
  EXPECT_EQ(engine.stats().memo_entries, 0u);

  // Read-write stores; a later read-only request then hits.
  serve_one(CachePolicy::kReadWrite);
  EXPECT_EQ(engine.stats().sampled, 4u);
  EXPECT_EQ(engine.stats().memo_entries, 1u);
  const EstimateResult hit = serve_one(CachePolicy::kReadOnly);
  EXPECT_EQ(hit.provenance, ResultProvenance::kCacheHit);
  EXPECT_EQ(engine.stats().sampled, 4u);
  EXPECT_EQ(engine.stats().memo_hits, 1u);
}

// Coalescing is policy-aware: a kBypass request must recompute even when
// its query twin in the same batch is served from the warm memo — in
// either batch order.
TEST(InferenceEngine, MixedPoliciesInOneBatchNeverCoalesce) {
  Table table = SmallTable(73);
  auto model = SmallTrainedModel(table, 73);
  const Query q = ServingQueries(table, 79)[0];  // a sampled-path query

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);
  const double want = est.EstimateSelectivity(q);

  InferenceEngine engine(InferenceEngineConfig{.num_threads = 2});
  {
    std::vector<EstimateRequest> warmup{EstimateRequest(q)};
    std::vector<EstimateResult> out;
    engine.EstimateBatch(&est, warmup, &out);  // memo now holds q
  }

  for (const bool bypass_first : {false, true}) {
    EstimateRequest rw(q);
    EstimateRequest bypass(q);
    bypass.options.cache_policy = CachePolicy::kBypass;
    std::vector<EstimateRequest> batch;
    if (bypass_first) {
      batch.push_back(std::move(bypass));
      batch.push_back(std::move(rw));
    } else {
      batch.push_back(std::move(rw));
      batch.push_back(std::move(bypass));
    }
    const size_t sampled_before = engine.stats().sampled;
    std::vector<EstimateResult> out;
    engine.EstimateBatch(&est, batch, &out);
    const size_t rw_at = bypass_first ? 1 : 0;
    const size_t bypass_at = bypass_first ? 0 : 1;
    EXPECT_EQ(out[rw_at].provenance, ResultProvenance::kCacheHit)
        << "bypass_first " << bypass_first;
    EXPECT_NE(out[bypass_at].provenance, ResultProvenance::kCacheHit)
        << "bypass_first " << bypass_first;
    EXPECT_EQ(engine.stats().sampled, sampled_before + 1);  // the bypass
    EXPECT_EQ(out[0].estimate, want);
    EXPECT_EQ(out[1].estimate, want);
  }
}

TEST(InferenceEngine, OracleModelServesConcurrently) {
  Table table = SmallTable(29);
  OracleModel oracle(&table);
  ASSERT_TRUE(oracle.SupportsConcurrentSampling());

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(&oracle, ncfg, 0, "Oracle");

  const auto queries = ServingQueries(table, 37);
  std::vector<double> sequential;
  for (const auto& q : queries) {
    sequential.push_back(est.EstimateSelectivity(q));
  }
  InferenceEngine engine(InferenceEngineConfig{.num_threads = 4});
  std::vector<double> batched;
  engine.EstimateBatch(&est, queries, &batched);
  EXPECT_EQ(batched, sequential);
}

// Satellite of the overload-safety PR: expiry is INCLUSIVE at the
// deadline instant — a request whose deadline equals the check time is
// already expired ("expired by dispatch time"), and every shed site uses
// this one predicate.
TEST(EstimateOptions, ExpiryIsInclusiveAtTheDeadlineInstant) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t = Clock::now();

  EstimateOptions options;  // no deadline: never expires
  EXPECT_FALSE(options.ExpiredAt(t));
  EXPECT_FALSE(options.ExpiredAt(Clock::time_point::max()));

  options.deadline = t;
  EXPECT_TRUE(options.ExpiredAt(t)) << "expiry must include the instant";
  EXPECT_FALSE(options.ExpiredAt(t - std::chrono::nanoseconds(1)));
  EXPECT_TRUE(options.ExpiredAt(t + std::chrono::nanoseconds(1)));

  // The shared raw-time_point form (the one the mid-walk checks mirror)
  // agrees.
  EXPECT_TRUE(EstimateOptions::Expired(t, t));
  EXPECT_FALSE(EstimateOptions::Expired(t + std::chrono::nanoseconds(1), t));
  EXPECT_FALSE(EstimateOptions::Expired(EstimateOptions::kNoDeadline, t));
}

// Headline bugfix of the overload-safety PR: compute_ms is attributed per
// phase, not stamped batch-wide. A cache hit served in the SAME batch as
// a sampled walk must report strictly less compute than the walk — the
// old whole-batch stamp gave both the identical (walk-sized) figure.
TEST(InferenceEngine, CacheHitComputeMsBelowSampledWalk) {
  Table table = SmallTable(83);
  auto model = SmallTrainedModel(table, 83);
  const auto queries = ServingQueries(table, 113);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 2000;  // a walk long enough to dwarf a memo lookup
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  // Two queries that definitely walk (not shortcuts): queries[0] is
  // sampled by construction; find a second one.
  ASSERT_EQ(est.sampler()->Classify(queries[0]),
            ProgressiveSampler::Path::kSampled);
  size_t fresh = 0;
  for (size_t i = 1; i < queries.size() && fresh == 0; ++i) {
    if (est.sampler()->Classify(queries[i]) ==
        ProgressiveSampler::Path::kSampled) {
      fresh = i;
    }
  }
  ASSERT_NE(fresh, 0u);

  for (const bool planned : {true, false}) {
    InferenceEngineConfig ecfg;
    ecfg.num_threads = 2;
    ecfg.enable_plan = planned;
    InferenceEngine engine(ecfg);

    // Warm the memo with queries[0].
    std::vector<EstimateRequest> warm{EstimateRequest(queries[0])};
    std::vector<EstimateResult> warm_out;
    engine.EstimateBatch(&est, warm, &warm_out);
    ASSERT_TRUE(warm_out[0].provenance == ResultProvenance::kSampled ||
                warm_out[0].provenance == ResultProvenance::kPlannedGroup);
    EXPECT_GT(warm_out[0].compute_ms, 0.0);

    // One batch holding both a hit and a fresh walk: per-phase
    // attribution must separate them.
    std::vector<EstimateRequest> batch;
    batch.emplace_back(queries[0]);      // memo hit
    batch.emplace_back(queries[fresh]);  // fresh sampled walk
    std::vector<EstimateResult> out;
    engine.EstimateBatch(&est, batch, &out);
    ASSERT_EQ(out[0].provenance, ResultProvenance::kCacheHit)
        << "planned " << planned;
    ASSERT_TRUE(out[1].provenance == ResultProvenance::kSampled ||
                out[1].provenance == ResultProvenance::kPlannedGroup);
    // Wall-clock-coupled ordering: a sanitizer's instrumentation can
    // inflate a map lookup past a tiny walk, so the comparison (not the
    // attribution mechanism) is waived under NARU_SMOKE_NO_PERF_ASSERT.
    if (GetEnvInt("NARU_SMOKE_NO_PERF_ASSERT", 0) == 0) {
      EXPECT_LT(out[0].compute_ms, out[1].compute_ms)
          << "planned " << planned
          << ": a cache hit must not be charged the batch's walk time";
      // And across batches: the hit is cheaper than its own original walk.
      EXPECT_LT(out[0].compute_ms, warm_out[0].compute_ms)
          << "planned " << planned;
    }
  }
}

// Tentpole: a soft deadline propagates INTO the walk. A computation whose
// every interested request has expired is abandoned between column steps
// with a typed DEADLINE_EXCEEDED — and the surviving requests of the same
// batch stay bit-identical to a run without the expired request.
TEST(InferenceEngine, MidWalkDeadlineAbandonsOnlyTheExpiredComputation) {
  Table table = SmallTable(89);
  auto model = SmallTrainedModel(table, 89);
  const auto queries = ServingQueries(table, 127);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  for (const bool planned : {true, false}) {
    InferenceEngineConfig ecfg;
    ecfg.num_threads = 2;
    ecfg.enable_cache = false;  // identical recomputation across runs
    ecfg.enable_plan = planned;

    // Survivors: a handful of deadline-free requests.
    std::vector<EstimateRequest> survivors;
    for (size_t i = 0; i < 5; ++i) survivors.emplace_back(queries[i]);

    // The doomed request: a huge per-request budget (its walk takes far
    // longer than the deadline) with a deadline that is STILL LIVE at
    // dispatch — generous enough to survive scheduling noise on a loaded
    // machine, far shorter than its walk — so it passes the shed pass
    // and must be abandoned mid-walk, at a column boundary.
    std::vector<EstimateRequest> batch = survivors;
    EstimateRequest doomed(queries[0]);
    doomed.options.num_samples = 500000;
    batch.push_back(std::move(doomed));

    InferenceEngine engine(ecfg);  // before the deadline: pool spawn-up
    std::vector<EstimateResult> out;
    batch.back().options.deadline = EstimateOptions::DeadlineInMs(50.0);
    engine.EstimateBatch(&est, batch, &out);

    const EstimateResult& shed = out.back();
    EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded)
        << "planned " << planned;
    EXPECT_TRUE(std::isnan(shed.estimate));
    EXPECT_EQ(shed.provenance, ResultProvenance::kShed);
    EXPECT_EQ(shed.samples_used, 0u);
    const EngineStats stats = engine.stats();
    EXPECT_EQ(stats.shed_deadline, 0u)
        << "planned " << planned << ": must not have shed at dispatch";
    EXPECT_GE(stats.shed_midwalk, 1u) << "planned " << planned;
    EXPECT_EQ(stats.results_shed, 1u);

    // Survivors are bit-identical to the sequential path AND to a batch
    // that never contained the expired request.
    InferenceEngine control(ecfg);
    std::vector<EstimateResult> control_out;
    control.EstimateBatch(&est, survivors, &control_out);
    for (size_t i = 0; i < survivors.size(); ++i) {
      ASSERT_TRUE(out[i].ok()) << "planned " << planned << " query " << i;
      EXPECT_EQ(out[i].estimate, control_out[i].estimate)
          << "planned " << planned << " query " << i;
      EXPECT_EQ(out[i].estimate, est.EstimateSelectivity(batch[i].query))
          << "planned " << planned << " query " << i;
    }
  }

  // The sequential typed path abandons mid-walk by the same rule.
  EstimateOptions heavy;
  heavy.num_samples = 500000;
  heavy.deadline = EstimateOptions::DeadlineInMs(50.0);
  const EstimateResult direct = est.Estimate(queries[0], heavy);
  EXPECT_EQ(direct.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(direct.provenance, ResultProvenance::kShed);
  EXPECT_TRUE(std::isnan(direct.estimate));
}

// A deadline-free duplicate pins its coalesced computation alive: the
// shared walk may be abandoned only when EVERY request riding it has
// expired, so coalescing one live request with an expired-deadline twin
// must complete — with the one deterministic value for both.
TEST(InferenceEngine, CoalescedComputationSurvivesWhileAnySharerIsLive) {
  Table table = SmallTable(97);
  auto model = SmallTrainedModel(table, 97);
  const auto queries = ServingQueries(table, 131);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150000;  // walk well past the 50 ms deadline below
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  InferenceEngineConfig ecfg;
  ecfg.num_threads = 2;
  ecfg.enable_cache = false;
  InferenceEngine engine(ecfg);

  std::vector<EstimateRequest> batch;
  batch.emplace_back(queries[0]);  // deadline-carrying...
  batch.emplace_back(queries[0]);  // ...coalesced with a deadline-free twin
  std::vector<EstimateResult> out;
  // Live at dispatch (generous headroom), expired long before the walk
  // ends — only the deadline-free twin keeps the computation alive.
  batch.front().options.deadline = EstimateOptions::DeadlineInMs(50.0);
  engine.EstimateBatch(&est, batch, &out);

  ASSERT_TRUE(out[0].ok()) << out[0].status.ToString();
  ASSERT_TRUE(out[1].ok());
  EXPECT_EQ(out[0].estimate, out[1].estimate);
  EXPECT_EQ(out[0].estimate, est.EstimateSelectivity(queries[0]));
  EXPECT_EQ(engine.stats().shed_midwalk, 0u);
}

// Satellite: the soft deadline propagates into EXACT ENUMERATION too.
// Expiry is re-checked between LogProbRows batches (never inside a
// kernel); an abandoned enumeration returns a typed DEADLINE_EXCEEDED
// shed counted as shed_midwalk, and every other request of the batch —
// including a small deadline-free enumeration — stays bit-identical to a
// run that never contained the doomed request.
TEST(InferenceEngine, MidWalkDeadlineAbandonsExactEnumeration) {
  // Big domains so a near-half-domain region still holds ~189k points:
  // ~92 LogProbRows batches of 2048, far longer than the deadline.
  Table table = MakeRandomTable(3000, {90, 70, 60}, 157, /*skew=*/1.0);
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {24, 24};
  mcfg.encoder.onehot_threshold = 16;
  mcfg.seed = 157;
  auto model =
      std::make_unique<MadeModel>(std::vector<size_t>{90, 70, 60}, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 256;
  Trainer(model.get(), tcfg).Train(table);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 200000;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<ValueSet> all;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    all.push_back(ValueSet::All(table.column(c).DomainSize()));
  }
  // The doomed enumeration: 45*70*60 = 189k points (under the threshold),
  // ~92 LogProbRows batches — far longer than the deadline below.
  auto huge_region = all;
  huge_region[0] = ValueSet::Interval(90, 0, 44);
  const Query huge(huge_region);
  ASSERT_TRUE(est.ShouldEnumerate(huge));
  auto small_region = all;
  small_region[0] = ValueSet::Interval(90, 3, 4);
  const Query small_enum(small_region);  // 2*70*60 points: finishes fast
  ASSERT_TRUE(est.ShouldEnumerate(small_enum));
  // Survivor regions sit ABOVE the threshold: sampled walks.
  auto f1 = all;
  f1[2] = ValueSet::Interval(60, 10, 45);  // 90*70*36 = 227k points
  auto f2 = all;
  f2[1] = ValueSet::Interval(70, 5, 60);  // 90*56*60 = 302k points
  ASSERT_FALSE(est.ShouldEnumerate(Query(f1)));
  ASSERT_FALSE(est.ShouldEnumerate(Query(f2)));

  InferenceEngineConfig ecfg;
  ecfg.num_threads = 2;
  ecfg.enable_cache = false;  // identical recomputation across runs
  InferenceEngine engine(ecfg);

  std::vector<EstimateRequest> survivors;
  survivors.emplace_back(Query(f1));
  survivors.emplace_back(Query(f2));
  survivors.emplace_back(small_enum);
  std::vector<EstimateRequest> batch = survivors;
  batch.emplace_back(huge);
  std::vector<EstimateResult> out;
  // Live at dispatch (generous headroom for scheduling noise), expired
  // long before the ~92-batch enumeration can finish.
  batch.back().options.deadline = EstimateOptions::DeadlineInMs(50.0);
  engine.EstimateBatch(&est, batch, &out);

  const EstimateResult& shed = out.back();
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(std::isnan(shed.estimate));
  EXPECT_EQ(shed.provenance, ResultProvenance::kShed);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed_deadline, 0u) << "must not have shed at dispatch";
  EXPECT_EQ(stats.shed_midwalk, 1u);
  EXPECT_EQ(stats.enumerated, 1u) << "the small enumeration must finish";
  EXPECT_EQ(stats.results_shed, 1u);

  // Survivors are bit-identical to a batch that never held the doomed
  // enumeration, and to the sequential path.
  InferenceEngine control(ecfg);
  std::vector<EstimateResult> control_out;
  control.EstimateBatch(&est, survivors, &control_out);
  for (size_t i = 0; i < survivors.size(); ++i) {
    ASSERT_TRUE(out[i].ok()) << "query " << i;
    EXPECT_EQ(out[i].estimate, control_out[i].estimate) << "query " << i;
    EXPECT_EQ(out[i].estimate,
              est.EstimateSelectivity(survivors[i].query))
        << "query " << i;
  }
  EXPECT_EQ(out[2].provenance, ResultProvenance::kEnumerated);

  // The sequential typed path abandons the same way...
  EstimateOptions opt;
  opt.deadline = EstimateOptions::DeadlineInMs(50.0);
  const EstimateResult direct = est.Estimate(huge, opt);
  EXPECT_EQ(direct.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(direct.provenance, ResultProvenance::kShed);
  EXPECT_TRUE(std::isnan(direct.estimate));

  // ...and the enumerator primitive honors the contract directly: an
  // expired deadline abandons (after at most one batch), no deadline
  // completes with a sane selectivity.
  bool abandoned = false;
  const double v = EnumerateSelectivity(
      est.model(), huge, /*batch=*/2048,
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1),
      &abandoned);
  EXPECT_TRUE(abandoned);
  EXPECT_TRUE(std::isnan(v));
  abandoned = false;
  const double small_v = EnumerateSelectivity(est.model(), small_enum,
                                              /*batch=*/2048, kNoDeadline,
                                              &abandoned);
  EXPECT_FALSE(abandoned);
  EXPECT_TRUE(std::isfinite(small_v));
  EXPECT_GE(small_v, 0.0);
}

TEST(MultiOrderEnsemble, BatchMatchesSequential) {
  Table table = MakeRandomTable(400, {6, 5, 4}, 41, /*skew=*/1.0);
  MultiOrderConfig cfg;
  cfg.num_orders = 2;
  cfg.model.hidden_sizes = {16, 16};
  cfg.model.encoder.onehot_threshold = 16;
  cfg.model.seed = 41;
  cfg.trainer.epochs = 2;
  cfg.trainer.batch_size = 128;
  cfg.estimator.num_samples = 150;
  cfg.estimator.enumeration_threshold = 0;
  MultiOrderEnsemble ensemble(table, cfg);

  WorkloadConfig wcfg;
  wcfg.num_queries = 8;
  wcfg.min_filters = 1;
  wcfg.max_filters = 3;
  wcfg.seed = 43;
  const auto queries = GenerateWorkload(table, wcfg);

  std::vector<double> sequential;
  for (const auto& q : queries) {
    sequential.push_back(ensemble.EstimateSelectivity(q));
  }
  std::vector<double> batched;
  ensemble.EstimateBatch(queries, &batched);
  EXPECT_EQ(batched, sequential);
}

}  // namespace
}  // namespace naru
