// Tests for column factorization: layout construction, row codecs, the
// per-path (non-rectangular) region masks, sampler/enumerator agreement,
// end-to-end trained accuracy on a large-domain column, model-size
// shrinkage, and compressor round-trips through the factorized layout.
#include <gtest/gtest.h>

#include <cmath>

#include "core/enumerator.h"
#include "core/factorized.h"
#include "core/generator.h"
#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "core/compress.h"
#include "data/datasets.h"
#include "query/executor.h"

namespace naru {
namespace {

MadeModel::Config SmallConfig(uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {32, 32};
  cfg.encoder.onehot_threshold = 64;
  cfg.encoder.embed_dim = 8;
  cfg.seed = seed;
  return cfg;
}

FactorizedModel MakeFactorized(const std::vector<size_t>& domains,
                               size_t threshold, uint64_t seed) {
  FactorizedLayout layout = FactorizedLayout::Build(domains, threshold);
  auto inner =
      std::make_unique<MadeModel>(layout.position_domains(), SmallConfig(seed));
  return FactorizedModel(std::move(inner), std::move(layout));
}

TEST(FactorizedLayout, SplitsLargeColumnsOnly) {
  const std::vector<size_t> domains = {4, 1000, 7, 300};
  FactorizedLayout layout = FactorizedLayout::Build(domains, 256);
  EXPECT_EQ(layout.num_table_columns(), 4u);
  EXPECT_EQ(layout.num_positions(), 6u);  // 1 + 2 + 1 + 2
  EXPECT_FALSE(layout.column_is_split(0));
  EXPECT_TRUE(layout.column_is_split(1));
  EXPECT_FALSE(layout.column_is_split(2));
  EXPECT_TRUE(layout.column_is_split(3));
  // Sub-domains near sqrt: 1000 -> bits 10, shift 5: hi ceil(1000/32)=32,
  // lo 32.
  EXPECT_EQ(layout.position(1).domain, 32u);
  EXPECT_EQ(layout.position(2).domain, 32u);
  // Product of sub-domains covers the original domain.
  EXPECT_GE(layout.position(1).domain * layout.position(2).domain, 1000u);
}

TEST(FactorizedLayout, RowCodecRoundTripsEveryCode) {
  const std::vector<size_t> domains = {5, 300};
  FactorizedLayout layout = FactorizedLayout::Build(domains, 64);
  std::vector<int32_t> table(2), model(layout.num_positions()), back(2);
  for (int32_t a = 0; a < 5; ++a) {
    for (int32_t b = 0; b < 300; b += 7) {
      table[0] = a;
      table[1] = b;
      layout.EncodeRow(table.data(), model.data());
      layout.DecodeRow(model.data(), back.data());
      ASSERT_EQ(back[0], a);
      ASSERT_EQ(back[1], b);
      // Sub-codes stay inside their sub-domains.
      for (size_t pos = 0; pos < layout.num_positions(); ++pos) {
        ASSERT_GE(model[pos], 0);
        ASSERT_LT(static_cast<size_t>(model[pos]),
                  layout.position(pos).domain);
      }
    }
  }
}

TEST(FactorizedModel, LogProbConsistentWithEncodedInner) {
  const std::vector<size_t> domains = {6, 500};
  FactorizedLayout layout = FactorizedLayout::Build(domains, 64);
  auto inner = std::make_unique<MadeModel>(layout.position_domains(),
                                           SmallConfig(3));
  MadeModel reference(layout.position_domains(), SmallConfig(3));
  FactorizedModel model(std::move(inner), layout);

  IntMatrix table_row(1, 2);
  table_row.At(0, 0) = 3;
  table_row.At(0, 1) = 417;
  std::vector<double> lp;
  model.LogProbRows(table_row, &lp);

  IntMatrix enc(1, 3);
  layout.EncodeRow(table_row.Row(0), enc.Row(0));
  std::vector<double> lp_ref;
  reference.LogProbRows(enc, &lp_ref);
  EXPECT_NEAR(lp[0], lp_ref[0], 1e-6);
}

TEST(FactorizedModel, SamplerMatchesEnumeratorOnRangeQueries) {
  // Both integrate the same (untrained) model over the VALID region; the
  // non-rectangular low-mask must make them agree.
  const std::vector<size_t> domains = {5, 300, 4};
  FactorizedModel model = MakeFactorized(domains, 64, 7);

  const std::vector<Query> queries = {
      Query({ValueSet::Interval(5, 1, 3), ValueSet::Interval(300, 37, 211),
             ValueSet::All(4)}),
      Query({ValueSet::All(5), ValueSet::Interval(300, 0, 64),
             ValueSet::Interval(4, 2, 3)}),
      Query({ValueSet::All(5), ValueSet::Set(300, {3, 64, 65, 255, 299}),
             ValueSet::All(4)}),
      // Wildcard on the split column: masks must still exclude invalid
      // (high, low) combinations (300 does not fill its last block).
      Query({ValueSet::Interval(5, 0, 2), ValueSet::All(300),
             ValueSet::All(4)}),
  };
  for (const auto& q : queries) {
    const double exact = EnumerateSelectivity(&model, q);
    ASSERT_GT(exact, 0.0);
    ProgressiveSamplerConfig scfg;
    scfg.num_samples = 30000;
    scfg.seed = 13;
    ProgressiveSampler sampler(&model, scfg);
    const double est = sampler.EstimateSelectivity(q);
    EXPECT_NEAR(est / exact, 1.0, 0.1) << q.ToString(Table("t"));
  }
}

TEST(FactorizedModel, TrainingShrinksInvalidMass) {
  // Valid-region mass starts below 1 (the inner model wastes mass on
  // codes >= D) and approaches 1 with training.
  Table t = MakeRandomTable(3000, {6, 500}, 17, /*skew=*/1.0);
  // Build over the table's REALIZED domains (skewed generators rarely
  // materialize every requested value).
  const std::vector<size_t> domains = {t.column(0).DomainSize(),
                                       t.column(1).DomainSize()};
  ASSERT_GT(domains[1], 300u);  // still a split-worthy domain
  FactorizedModel model = MakeFactorized(domains, 64, 19);

  Query all({ValueSet::All(domains[0]), ValueSet::All(domains[1])});
  const double before = EnumerateSelectivity(&model, all);
  EXPECT_LT(before, 0.999);  // untrained: some invalid mass

  TrainerConfig tcfg;
  tcfg.epochs = 15;
  tcfg.batch_size = 256;
  tcfg.lr = 5e-3;
  Trainer(&model, tcfg).Train(t);
  const double after = EnumerateSelectivity(&model, all);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.95);
}

TEST(FactorizedModel, EndToEndAccuracyOnLargeDomainColumn) {
  Table t = MakeRandomTable(5000, {8, 600}, 23, /*skew=*/1.0);
  const std::vector<size_t> domains = {t.column(0).DomainSize(),
                                       t.column(1).DomainSize()};
  ASSERT_GT(domains[1], 300u);
  FactorizedModel model = MakeFactorized(domains, 64, 29);

  TrainerConfig tcfg;
  tcfg.epochs = 20;
  tcfg.batch_size = 256;
  tcfg.lr = 5e-3;
  Trainer(&model, tcfg).Train(t);

  NaruEstimatorConfig ecfg;
  ecfg.num_samples = 2000;
  ecfg.enumeration_threshold = 0;
  NaruEstimator est(&model, ecfg, model.SizeBytes(), "Naru-fact");

  const int64_t mid = static_cast<int64_t>(domains[1] / 2);
  const std::vector<Query> queries = {
      Query(t, {{1, CompareOp::kLe, mid}}),
      Query(t, {{0, CompareOp::kGe, 3},
                {1, CompareOp::kBetween, mid / 3, 2 * mid}}),
      Query(t, {{0, CompareOp::kLe, 5},
                {1, CompareOp::kGe, static_cast<int64_t>(domains[1] - mid / 2)}}),
  };
  for (const auto& q : queries) {
    const double truth = ExecuteSelectivity(t, q);
    ASSERT_GT(truth, 0.0);
    const double got = est.EstimateSelectivity(q);
    const double qerr =
        std::max(got, truth) / std::max(1e-9, std::min(got, truth));
    EXPECT_LT(qerr, 2.0) << q.ToString(t) << " est " << got << " truth "
                         << truth;
  }
}

TEST(FactorizedModel, ShrinksModelAgainstUnfactorized) {
  const std::vector<size_t> domains = {4, 5000};
  MadeModel::Config cfg = SmallConfig(31);
  cfg.encoder.onehot_threshold = 8;  // force embeddings either way
  cfg.embedding_reuse = false;        // make the head cost visible
  MadeModel plain(domains, cfg);

  FactorizedLayout layout = FactorizedLayout::Build(domains, 256);
  auto inner = std::make_unique<MadeModel>(layout.position_domains(), cfg);
  FactorizedModel fact(std::move(inner), layout);
  EXPECT_LT(fact.SizeBytes(), plain.SizeBytes() / 2);
}

TEST(FactorizedModel, GeneratorsEmitValidTableRows) {
  const std::vector<size_t> domains = {5, 300};
  FactorizedModel model = MakeFactorized(domains, 64, 37);
  TupleGenerator gen(&model, 41);
  IntMatrix tuples;
  gen.DrawUnconditional(3000, &tuples);
  ASSERT_EQ(tuples.cols(), 2u);
  size_t invalid = 0;
  for (size_t r = 0; r < tuples.rows(); ++r) {
    EXPECT_GE(tuples.At(r, 0), 0);
    EXPECT_LT(tuples.At(r, 0), 5);
    EXPECT_GE(tuples.At(r, 1), 0);
    // Unconditional draws CAN produce invalid re-joined codes on an
    // untrained model (documented caveat); count them.
    invalid += tuples.At(r, 1) >= 300;
  }
  EXPECT_LT(invalid, tuples.rows() / 2);

  // Conditional draws respect the region (the masks exclude invalid codes).
  Query q({ValueSet::Interval(5, 1, 3), ValueSet::Interval(300, 50, 250)});
  std::vector<double> weights;
  gen.DrawWeighted(q, 2000, &tuples, &weights);
  for (size_t r = 0; r < tuples.rows(); ++r) {
    if (weights[r] <= 0) continue;
    EXPECT_TRUE(RowSatisfies(q, tuples.Row(r))) << "row " << r;
  }
}

TEST(FactorizedModel, CompressorRoundTripsThroughSubColumns) {
  Table t = MakeRandomTable(800, {6, 500}, 43, /*skew=*/1.1);
  const std::vector<size_t> domains = {t.column(0).DomainSize(),
                                       t.column(1).DomainSize()};
  ASSERT_GT(domains[1], 100u);
  FactorizedModel model = MakeFactorized(domains, 64, 47);

  CompressionStats stats;
  auto blob = CompressTable(&model, t, &stats);
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  IntMatrix decoded;
  ASSERT_TRUE(DecompressTuples(&model, blob.ValueOrDie(), &decoded).ok());
  ASSERT_EQ(decoded.rows(), t.num_rows());
  ASSERT_EQ(decoded.cols(), 2u);
  std::vector<int32_t> row(2);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    t.GetRowCodes(r, row.data());
    ASSERT_EQ(decoded.At(r, 0), row[0]) << r;
    ASSERT_EQ(decoded.At(r, 1), row[1]) << r;
  }
}

TEST(FactorizedModel, ExactPowerOfTwoDomainHasNoInvalidMass) {
  // 512 = 2^9 fills its blocks exactly: wildcard low positions are true
  // wildcards and the joint over valid codes is exactly normalized.
  const std::vector<size_t> domains = {4, 512};
  FactorizedModel model = MakeFactorized(domains, 64, 53);
  Query all({ValueSet::All(4), ValueSet::All(512)});
  EXPECT_NEAR(EnumerateSelectivity(&model, all), 1.0, 2e-3);
  // And the sampler's all-wildcard early exit applies.
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 8;
  ProgressiveSampler sampler(&model, scfg);
  EXPECT_EQ(sampler.EstimateSelectivity(all), 1.0);
}

}  // namespace
}  // namespace naru
