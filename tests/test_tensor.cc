// Unit tests for the tensor substrate: GEMM variants vs naive reference,
// softmax, ReLU and reductions.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/random.h"

namespace naru {
namespace {

Matrix RandomMatrix(size_t r, size_t c, Rng* rng) {
  Matrix m(r, c);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Gaussian());
  }
  return m;
}

void NaiveGemmNN(const Matrix& a, const Matrix& b, Matrix* c) {
  c->Resize(a.rows(), b.cols());
  c->Zero();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      c->At(i, j) = static_cast<float>(acc);
    }
  }
}

TEST(Gemm, NNMatchesNaive) {
  Rng rng(1);
  const Matrix a = RandomMatrix(33, 17, &rng);
  const Matrix b = RandomMatrix(17, 29, &rng);
  Matrix fast;
  Matrix slow;
  GemmNN(a, b, &fast);
  NaiveGemmNN(a, b, &slow);
  ASSERT_EQ(fast.rows(), slow.rows());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-4);
  }
}

TEST(Gemm, NTMatchesNaive) {
  Rng rng(2);
  const Matrix a = RandomMatrix(21, 13, &rng);
  const Matrix bt = RandomMatrix(19, 13, &rng);  // logical B = bt^T
  Matrix fast;
  GemmNT(a, bt, &fast);
  // Reference: build B explicitly.
  Matrix b(13, 19);
  for (size_t i = 0; i < 19; ++i) {
    for (size_t j = 0; j < 13; ++j) b.At(j, i) = bt.At(i, j);
  }
  Matrix slow;
  NaiveGemmNN(a, b, &slow);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-4);
  }
}

TEST(Gemm, TNMatchesNaive) {
  Rng rng(3);
  const Matrix at = RandomMatrix(15, 11, &rng);  // logical A = at^T
  const Matrix b = RandomMatrix(15, 9, &rng);
  Matrix fast;
  GemmTN(at, b, &fast);
  Matrix a(11, 15);
  for (size_t i = 0; i < 15; ++i) {
    for (size_t j = 0; j < 11; ++j) a.At(j, i) = at.At(i, j);
  }
  Matrix slow;
  NaiveGemmNN(a, b, &slow);
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-4);
  }
}

TEST(Gemm, AccumulateAddsIntoC) {
  Rng rng(4);
  const Matrix a = RandomMatrix(5, 6, &rng);
  const Matrix b = RandomMatrix(6, 7, &rng);
  Matrix once;
  GemmNN(a, b, &once);
  Matrix twice;
  GemmNN(a, b, &twice);
  GemmNN(a, b, &twice, /*accumulate=*/true);
  for (size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice.data()[i], 2.0f * once.data()[i], 1e-4);
  }
}

TEST(Gemm, BiasHelpers) {
  Matrix c(3, 2);
  c.Fill(1.0f);
  Matrix bias(1, 2);
  bias.At(0, 0) = 0.5f;
  bias.At(0, 1) = -1.0f;
  AddBiasRows(bias, &c);
  EXPECT_FLOAT_EQ(c.At(2, 0), 1.5f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 0.0f);

  Matrix grad(1, 2);
  AccumulateBiasGrad(c, &grad);
  EXPECT_FLOAT_EQ(grad.At(0, 0), 4.5f);
  EXPECT_FLOAT_EQ(grad.At(0, 1), 0.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(5);
  const Matrix logits = RandomMatrix(8, 12, &rng);
  Matrix probs;
  SoftmaxRows(logits, &probs);
  for (size_t r = 0; r < probs.rows(); ++r) {
    double sum = 0;
    for (size_t c = 0; c < probs.cols(); ++c) {
      EXPECT_GE(probs.At(r, c), 0.0f);
      sum += probs.At(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  Matrix a(1, 3);
  a.At(0, 0) = 1000.0f;
  a.At(0, 1) = 1001.0f;
  a.At(0, 2) = 1002.0f;
  Matrix p;
  SoftmaxRows(a, &p);
  Matrix b(1, 3);
  b.At(0, 0) = 0.0f;
  b.At(0, 1) = 1.0f;
  b.At(0, 2) = 2.0f;
  Matrix q;
  SoftmaxRows(b, &q);
  for (size_t c = 0; c < 3; ++c) EXPECT_NEAR(p.At(0, c), q.At(0, c), 1e-6);
}

TEST(Ops, SoftmaxSlice) {
  Matrix logits(2, 6);
  logits.Fill(0.0f);
  logits.At(0, 2) = 5.0f;
  Matrix probs(2, 6);
  probs.Fill(-1.0f);
  SoftmaxRowsSlice(logits, 2, 5, &probs);
  // Columns outside [2, 5) untouched.
  EXPECT_FLOAT_EQ(probs.At(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(probs.At(0, 5), -1.0f);
  double sum = 0;
  for (size_t c = 2; c < 5; ++c) sum += probs.At(0, c);
  EXPECT_NEAR(sum, 1.0, 1e-5);
  EXPECT_GT(probs.At(0, 2), 0.9f);
}

TEST(Ops, LogSumExpSlice) {
  const float row[4] = {0.0f, 1.0f, 2.0f, 100.0f};
  const double lse = LogSumExpSlice(row, 0, 3);
  const double expected = std::log(std::exp(0.0) + std::exp(1.0) +
                                   std::exp(2.0));
  EXPECT_NEAR(lse, expected, 1e-9);
  EXPECT_NEAR(LogSumExpSlice(row, 3, 4), 100.0, 1e-9);
}

TEST(Ops, ReluForwardBackward) {
  Matrix x(1, 4);
  x.At(0, 0) = -1.0f;
  x.At(0, 1) = 2.0f;
  x.At(0, 2) = 0.0f;
  x.At(0, 3) = 5.0f;
  Matrix y;
  ReluForward(x, &y);
  EXPECT_FLOAT_EQ(y.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 2.0f);

  Matrix dy(1, 4);
  dy.Fill(1.0f);
  Matrix dx;
  ReluBackward(x, dy, &dx);
  EXPECT_FLOAT_EQ(dx.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(dx.At(0, 2), 0.0f);  // gradient at exactly 0 is 0
  EXPECT_FLOAT_EQ(dx.At(0, 3), 1.0f);
}

TEST(Matrix, Helpers) {
  Matrix m(2, 2);
  m.At(0, 0) = 3.0f;
  m.At(1, 1) = -4.0f;
  EXPECT_DOUBLE_EQ(m.SumSquares(), 25.0);
  EXPECT_DOUBLE_EQ(m.AbsMax(), 4.0);
  EXPECT_EQ(m.ShapeString(), "[2 x 2]");
}

}  // namespace
}  // namespace naru
