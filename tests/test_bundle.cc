// Tests for self-describing model bundles (train once, reopen anywhere).
#include <gtest/gtest.h>

#include <cstdio>

#include "core/bundle.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "query/workload.h"

namespace naru {
namespace {

TEST(Bundle, RoundTripReproducesEstimates) {
  Table t = MakeRandomTable(2000, {8, 40, 6}, 3, 1.1);
  std::vector<size_t> domains = {t.column(0).DomainSize(),
                                 t.column(1).DomainSize(),
                                 t.column(2).DomainSize()};
  MadeModel::Config cfg;
  cfg.hidden_sizes = {32, 16};
  cfg.encoder.onehot_threshold = 10;
  cfg.encoder.embed_dim = 8;
  cfg.seed = 5;
  MadeModel model(domains, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 3;
  Trainer trainer(&model, tcfg);
  trainer.Train(t);

  const std::string path = testing::TempDir() + "/naru_bundle_test";
  ASSERT_TRUE(SaveModelBundle(path, &model).ok());

  auto loaded = LoadModelBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  MadeModel* reopened = loaded.ValueOrDie().get();
  ASSERT_EQ(reopened->num_columns(), 3u);
  EXPECT_EQ(reopened->DomainSize(1), domains[1]);
  EXPECT_EQ(reopened->config().hidden_sizes, cfg.hidden_sizes);

  // Same sampler seed => bit-identical estimates.
  WorkloadConfig wcfg;
  wcfg.num_queries = 8;
  wcfg.min_filters = 1;
  wcfg.max_filters = 3;
  wcfg.range_domain_threshold = 6;
  wcfg.seed = 9;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    NaruEstimatorConfig ncfg;
    ncfg.num_samples = 300;
    ncfg.sampler_seed = 77;
    NaruEstimator ea(&model, ncfg, 0, "orig");
    NaruEstimator eb(reopened, ncfg, 0, "loaded");
    EXPECT_DOUBLE_EQ(ea.EstimateSelectivity(q), eb.EstimateSelectivity(q));
  }
  std::remove(path.c_str());
  std::remove((path + ".weights").c_str());
}

TEST(Bundle, MissingManifestFails) {
  EXPECT_FALSE(LoadModelBundle("/nonexistent/bundle").ok());
}

TEST(Bundle, CorruptManifestFails) {
  const std::string path = testing::TempDir() + "/naru_bad_bundle";
  FILE* f = fopen(path.c_str(), "w");
  fputs("not-a-bundle\n", f);
  fclose(f);
  EXPECT_FALSE(LoadModelBundle(path).ok());
  std::remove(path.c_str());
}

TEST(Bundle, InconsistentDomainsFail) {
  const std::string path = testing::TempDir() + "/naru_bad_bundle2";
  FILE* f = fopen(path.c_str(), "w");
  fputs("naru-bundle-v1\ncolumns 3\ndomains 4 5\nhidden 8\n", f);
  fclose(f);
  EXPECT_FALSE(LoadModelBundle(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naru
