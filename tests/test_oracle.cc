// Tests for the oracle conditional model: exactness, session/stateless
// agreement, smoothing-induced entropy gaps (Figure 7 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "core/oracle_model.h"
#include "core/sampler.h"
#include "data/datasets.h"
#include "data/table_stats.h"
#include "query/executor.h"
#include "query/workload.h"

namespace naru {
namespace {

TEST(Oracle, ConditionalMatchesCounts) {
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 0, 0, 1})
                .AddIntColumn("b", {0, 1, 1, 1})
                .Build();
  OracleModel oracle(&t);

  IntMatrix sample(1, 2);
  Matrix probs;
  // P(a): {3/4, 1/4}.
  oracle.ConditionalDist(sample, 0, &probs);
  EXPECT_NEAR(probs.At(0, 0), 0.75f, 1e-6);
  EXPECT_NEAR(probs.At(0, 1), 0.25f, 1e-6);
  // P(b | a=0): {1/3, 2/3}.
  sample.At(0, 0) = 0;
  oracle.ConditionalDist(sample, 1, &probs);
  EXPECT_NEAR(probs.At(0, 0), 1.0f / 3.0f, 1e-6);
  EXPECT_NEAR(probs.At(0, 1), 2.0f / 3.0f, 1e-6);
  // P(b | a=1): {0, 1}.
  sample.At(0, 0) = 1;
  oracle.ConditionalDist(sample, 1, &probs);
  EXPECT_NEAR(probs.At(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(probs.At(0, 1), 1.0f, 1e-6);
}

TEST(Oracle, SessionAgreesWithStateless) {
  Table t = MakeRandomTable(500, {4, 6, 5}, 19);
  OracleModel oracle(&t);

  // Fix a batch of prefixes drawn from real rows so every prefix has
  // support; compare incremental session output to the stateless scan.
  const size_t batch = 16;
  IntMatrix samples(batch, 3);
  for (size_t r = 0; r < batch; ++r) {
    t.GetRowCodes(r * 7 % t.num_rows(), samples.Row(r));
  }

  auto session = oracle.StartSession(batch);
  for (size_t col = 0; col < 3; ++col) {
    Matrix from_session;
    session->Dist(samples, col, &from_session);
    Matrix stateless;
    oracle.ConditionalDist(samples, col, &stateless);
    ASSERT_EQ(from_session.rows(), stateless.rows());
    for (size_t r = 0; r < batch; ++r) {
      for (size_t v = 0; v < t.column(col).DomainSize(); ++v) {
        ASSERT_NEAR(from_session.At(r, v), stateless.At(r, v), 1e-5)
            << "col " << col << " row " << r << " value " << v;
      }
    }
  }
}

TEST(Oracle, SmoothedRowsStillNormalized) {
  Table t = MakeRandomTable(200, {5, 8}, 23);
  OracleModel oracle(&t, /*smoothing_lambda=*/0.37);
  IntMatrix samples(4, 2);
  for (size_t r = 0; r < 4; ++r) t.GetRowCodes(r, samples.Row(r));
  for (size_t col = 0; col < 2; ++col) {
    Matrix probs;
    oracle.ConditionalDist(samples, col, &probs);
    for (size_t r = 0; r < 4; ++r) {
      double sum = 0;
      for (size_t v = 0; v < t.column(col).DomainSize(); ++v) {
        sum += probs.At(r, v);
      }
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(Oracle, CrossEntropyAtZeroLambdaIsDataEntropy) {
  Table t = MakeRandomTable(400, {4, 7, 3}, 29);
  OracleModel oracle(&t, 0.0);
  EXPECT_NEAR(oracle.CrossEntropyBits(), TableStats::JointEntropyBits(t),
              1e-6);
}

TEST(Oracle, GapGrowsMonotonicallyWithLambda) {
  Table t = MakeRandomTable(400, {6, 10, 4}, 31);
  OracleModel oracle(&t, 0.0);
  const double h0 = oracle.CrossEntropyBits();
  double prev = h0;
  for (double lambda : {0.1, 0.3, 0.6, 0.9, 1.0}) {
    oracle.set_smoothing_lambda(lambda);
    const double ce = oracle.CrossEntropyBits();
    EXPECT_GE(ce + 1e-9, prev) << "lambda " << lambda;
    prev = ce;
  }
}

TEST(Oracle, FindLambdaHitsTargetGap) {
  Table t = MakeConvivaBLike(1000, 41, 12);
  OracleModel oracle(&t, 0.0);
  const double h_data = oracle.CrossEntropyBits();
  for (double target : {0.5, 2.0, 5.0}) {
    const double lambda = oracle.FindLambdaForGapBits(target, 0.05);
    OracleModel probe(&t, lambda);
    EXPECT_NEAR(probe.CrossEntropyBits() - h_data, target, 0.1)
        << "target " << target;
  }
  EXPECT_DOUBLE_EQ(oracle.FindLambdaForGapBits(0.0), 0.0);
}

TEST(Oracle, SamplingWithSmoothedModelStillReasonable) {
  // Figure 7's premise: estimates degrade smoothly with gap, and a modest
  // gap keeps range queries usable.
  Table t = MakeConvivaBLike(1000, 43, 10);
  WorkloadConfig wcfg;
  wcfg.num_queries = 10;
  wcfg.min_filters = 2;
  wcfg.max_filters = 4;
  wcfg.seed = 3;
  const auto queries = GenerateWorkload(t, wcfg);

  const double lambda = OracleModel(&t).FindLambdaForGapBits(1.0);
  OracleModel smoothed(&t, lambda);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 2000;
  ProgressiveSampler sampler(&smoothed, scfg);
  for (const auto& q : queries) {
    const double truth = ExecuteSelectivity(t, q);
    const double est = sampler.EstimateSelectivity(q);
    const double err =
        std::max(est, 1e-3) / std::max(truth, 1e-3);
    EXPECT_LT(std::max(err, 1.0 / err), 30.0) << q.ToString(t);
  }
}

}  // namespace
}  // namespace naru
