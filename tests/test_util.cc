// Unit tests for the utility substrate.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/env_config.h"
#include "util/quantile.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace naru {
namespace {

TEST(Status, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad arg");
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> good(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.ValueOrDie(), 7);

  Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NARU_ASSIGN_OR_RETURN(int h, Half(x));
  NARU_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, MacroPropagation) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, UniformDoubleRange) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(ZipfTable, SkewsTowardSmallIndices) {
  Rng rng(17);
  ZipfTable zipf(100, 1.2);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Sample(&rng) < 10) ++low;
  }
  // With s=1.2 the head holds well over half the mass.
  EXPECT_GT(low, n / 2);
}

TEST(Quantile, ExactQuantiles) {
  QuantileSketch s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 100.0);
  EXPECT_NEAR(s.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 0.2);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(Quantile, PaperNumberFormatting) {
  EXPECT_EQ(FormatPaperNumber(1.234), "1.23");
  EXPECT_EQ(FormatPaperNumber(152.4), "152");
  EXPECT_EQ(FormatPaperNumber(23456.0), "2e4");
}

TEST(StringUtil, SplitJoinTrim) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(TrimString("  hi \n"), "hi");
  EXPECT_EQ(HumanBytes(13 * 1024 * 1024), "13.0 MB");
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(Csv, ParseQuotedFields) {
  auto fields = ParseCsvLine("a,\"b,c\",\"d\"\"e\"", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(Csv, RoundTripFile) {
  const std::string path = testing::TempDir() + "/naru_csv_test.csv";
  CsvContents contents;
  contents.header = {"id", "name"};
  contents.rows = {{"1", "hello, world"}, {"2", "two"}};
  ASSERT_TRUE(WriteCsvFile(path, contents).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.ValueOrDie().rows.size(), 2u);
  EXPECT_EQ(loaded.ValueOrDie().rows[0][1], "hello, world");
  std::remove(path.c_str());
}

TEST(Csv, ArityMismatchIsError) {
  const std::string path = testing::TempDir() + "/naru_csv_bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  fputs("a,b\n1,2\n3\n", f);
  fclose(f);
  auto loaded = ReadCsvFile(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ThreadPool, ParallelForCoversRange) {
  std::vector<int> hits(10000, 0);
  ParallelFor(0, hits.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  std::atomic<int> total{0};
  ParallelFor(0, 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ParallelFor(0, 100, [&](size_t a, size_t b) {
        total.fetch_add(static_cast<int>(b - a));
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(EnvConfig, ParsesAndDefaults) {
  setenv("NARU_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("NARU_TEST_INT", 7), 42);
  EXPECT_EQ(GetEnvInt("NARU_TEST_MISSING", 7), 7);
  setenv("NARU_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("NARU_TEST_DBL", 0), 2.5);
  unsetenv("NARU_TEST_INT");
  unsetenv("NARU_TEST_DBL");
}

// The annotated Mutex/MutexLock/CondVar wrappers (util/thread_annotations.h)
// are the only sanctioned sync primitives in src/ (tools/check_repo_rules.py
// NAKED_SYNC) — exercise the whole surface so a wrapper regression cannot
// hide behind the no-op GCC expansion of the annotations.
// try_lock by the owning thread is UB on std::mutex, so held-ness is
// always probed from a second thread here.
bool TryLockFromOtherThread(Mutex* mu) NARU_NO_THREAD_SAFETY_ANALYSIS {
  bool acquired = false;
  std::thread prober([&] {
    acquired = mu->TryLock();
    if (acquired) mu->Unlock();
  });
  prober.join();
  return acquired;
}

TEST(ThreadAnnotations, MutexExcludesAndTryLock) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(TryLockFromOtherThread(&mu));  // held: contender must fail
  mu.Unlock();
  EXPECT_TRUE(TryLockFromOtherThread(&mu));  // released: contender succeeds
}

TEST(ThreadAnnotations, MutexLockGuardsCounterAcrossThreads) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(ThreadAnnotations, CondVarWaitSeesNotifiedPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;
  std::thread waiter([&] {
    mu.Lock();
    // The repo-wide cv idiom: explicit predicate loop, never a lambda
    // predicate (the thread-safety analysis cannot see into lambdas).
    while (!ready) cv.Wait(mu);
    observed = 42;
    mu.Unlock();
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(ThreadAnnotations, CondVarWaitUntilTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  mu.Lock();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // No notifier exists: WaitUntil must return (timeout) with the lock
  // re-acquired rather than blocking forever.
  cv.WaitUntil(mu, deadline);
  EXPECT_FALSE(TryLockFromOtherThread(&mu));  // lock re-acquired by waiter
  mu.Unlock();
}

}  // namespace
}  // namespace naru
