// Conformance suite for the kernel layer (gemm_simd.cc, quant.cc):
//   - SIMD (native dispatch AND the forced portable fallback) vs the scalar
//     reference across odd shapes, accumulate on/off, and both transpose
//     variants, within a tight epsilon (FMA contraction means cross-kernel
//     equality is not bitwise).
//   - WITHIN a fixed kernel: bitwise determinism across row partitions
//     (the thread-count contract) — evaluating a row subset reproduces the
//     full-batch rows exactly, including across the MR=4/MR=1 seam.
//   - The one-hot InputHint is exact: hinted and dense runs are bitwise
//     identical per kernel.
//   - Int8: quantize→dequantize round trip within half a step, masked zeros
//     stay exactly zero, and GemmNNInt8 matches the scalar GEMM over the
//     dequantized weights within epsilon.
//   - Matrix storage: 64-byte row alignment, padded stride, the
//     zero-padding invariant, and the Resize preservation contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/kernel.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace naru {
namespace {

// Forces a dispatch level for the enclosing scope (restores probing on
// destruction), so the portable fallback is exercised on AVX2 hosts too.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) {
    SetSimdLevelOverrideForTest(level);
  }
  ~ScopedSimdLevel() { ClearSimdLevelOverrideForTest(); }
};

Matrix RandomMatrix(size_t r, size_t c, Rng* rng) {
  Matrix m(r, c);
  for (size_t i = 0; i < r; ++i) {
    float* row = m.Row(i);
    for (size_t j = 0; j < c; ++j) {
      row[j] = static_cast<float>(rng->Gaussian());
    }
  }
  return m;
}

// One nonzero per 16-wide group of columns — the shape of a one-hot
// encoded input row.
Matrix OneHotishMatrix(size_t r, size_t c, Rng* rng) {
  Matrix m(r, c);
  for (size_t i = 0; i < r; ++i) {
    for (size_t g = 0; g < c; g += 16) {
      const size_t span = std::min<size_t>(16, c - g);
      const size_t hot = g + static_cast<size_t>(rng->UniformInt(span));
      m.At(i, hot) = 1.0f;
    }
  }
  return m;
}

// Double-accumulator references.
void NaiveNN(const Matrix& a, const Matrix& b, Matrix* c) {
  c->Resize(a.rows(), b.cols());
  c->Zero();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a.At(i, k) * b.At(k, j);
      c->At(i, j) = static_cast<float>(acc);
    }
  }
}

void NaiveNT(const Matrix& a, const Matrix& bt, Matrix* c) {
  c->Resize(a.rows(), bt.rows());
  c->Zero();
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < bt.rows(); ++j) {
      double acc = 0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a.At(i, k) * bt.At(j, k);
      c->At(i, j) = static_cast<float>(acc);
    }
  }
}

void ExpectNear(const Matrix& want, const Matrix& got, double tol) {
  ASSERT_EQ(want.rows(), got.rows());
  ASSERT_EQ(want.cols(), got.cols());
  for (size_t i = 0; i < want.rows(); ++i) {
    for (size_t j = 0; j < want.cols(); ++j) {
      EXPECT_NEAR(want.At(i, j), got.At(i, j), tol)
          << "at (" << i << ", " << j << ")";
    }
  }
}

void ExpectBitIdentical(const Matrix& want, const Matrix& got) {
  ASSERT_EQ(want.rows(), got.rows());
  ASSERT_EQ(want.cols(), got.cols());
  for (size_t i = 0; i < want.rows(); ++i) {
    ASSERT_EQ(0, std::memcmp(want.Row(i), got.Row(i),
                             want.cols() * sizeof(float)))
        << "row " << i;
  }
}

struct Shape {
  size_t m, k, n;
};

// Odd shapes, sub-stride shapes, exact multiples, and MADE-sized cases.
const Shape kShapes[] = {
    {1, 1, 1},    {1, 17, 1},   {3, 5, 7},     {4, 16, 16},
    {5, 100, 1},  {8, 16, 24},  {13, 31, 33},  {2, 8, 256},
    {33, 64, 100}, {64, 128, 128},
};

void CheckNNConformance(double tol) {
  Rng rng(11);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix b = RandomMatrix(s.k, s.n, &rng);
    Matrix ref;
    NaiveNN(a, b, &ref);
    for (const bool accumulate : {false, true}) {
      Matrix base = RandomMatrix(s.m, s.n, &rng);
      Matrix scalar_out = base;
      Matrix simd_out = base;
      if (!accumulate) {
        // Non-accumulate ignores prior contents entirely.
        scalar_out = Matrix();
        simd_out = Matrix();
      }
      GemmNN(a, b, &scalar_out, accumulate, KernelKind::kScalar);
      GemmNN(a, b, &simd_out, accumulate, KernelKind::kSimd);
      ExpectNear(scalar_out, simd_out, tol);
      if (!accumulate) ExpectNear(ref, simd_out, tol);
    }
  }
}

void CheckNTConformance(double tol) {
  Rng rng(13);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix bt = RandomMatrix(s.n, s.k, &rng);
    Matrix ref;
    NaiveNT(a, bt, &ref);
    for (const bool accumulate : {false, true}) {
      Matrix base = RandomMatrix(s.m, s.n, &rng);
      Matrix scalar_out = base;
      Matrix simd_out = base;
      if (!accumulate) {
        scalar_out = Matrix();
        simd_out = Matrix();
      }
      GemmNT(a, bt, &scalar_out, accumulate, KernelKind::kScalar);
      GemmNT(a, bt, &simd_out, accumulate, KernelKind::kSimd);
      ExpectNear(scalar_out, simd_out, tol);
      if (!accumulate) ExpectNear(ref, simd_out, tol);
    }
  }
}

TEST(GemmConformance, SimdNNMatchesScalar) { CheckNNConformance(1e-3); }

TEST(GemmConformance, SimdNTMatchesScalar) { CheckNTConformance(1e-3); }

TEST(GemmConformance, PortableFallbackMatchesScalar) {
  ScopedSimdLevel force(SimdLevel::kNone);
  CheckNNConformance(1e-3);
  CheckNTConformance(1e-3);
}

#if defined(__x86_64__)
TEST(GemmConformance, DispatchProbeFindsAvx2OnX86WithAvx2) {
  // On the CI/dev hosts this suite targets, x86 implies AVX2; the probe
  // must not silently land on the fallback there.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    EXPECT_EQ(DetectedSimdLevel(), SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(DetectedSimdLevel(), SimdLevel::kNone);
  }
}
#endif

// The thread-count determinism contract: C rows depend only on A's row and
// B, never on how rows are partitioned. Evaluating a leading subset of A's
// rows must reproduce the full run bitwise — this crosses the MR=4/MR=1
// register-blocking seam in the SIMD kernels (rows 4..6 of a 7-row run sit
// in an MR=4 block; in a 5-row run row 4 is an MR=1 remainder).
void CheckRowPartitionDeterminism(KernelKind kernel) {
  Rng rng(17);
  const size_t m = 23, k = 61, n = 37;
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix b = RandomMatrix(k, n, &rng);
  Matrix full;
  GemmNN(a, b, &full, false, kernel);
  for (const size_t sub : {1ul, 4ul, 5ul, 7ul, 22ul}) {
    Matrix asub(sub, k);
    for (size_t i = 0; i < sub; ++i) {
      std::memcpy(asub.Row(i), a.Row(i), k * sizeof(float));
    }
    Matrix csub;
    GemmNN(asub, b, &csub, false, kernel);
    for (size_t i = 0; i < sub; ++i) {
      ASSERT_EQ(0,
                std::memcmp(full.Row(i), csub.Row(i), n * sizeof(float)))
          << "kernel " << KernelKindName(kernel) << " sub " << sub
          << " row " << i;
    }
  }
  // And inline (serial-region) execution equals pooled execution.
  Matrix serial;
  {
    ScopedSerialRegion sr;
    GemmNN(a, b, &serial, false, kernel);
  }
  ExpectBitIdentical(full, serial);
}

TEST(GemmDeterminism, ScalarRowPartitions) {
  CheckRowPartitionDeterminism(KernelKind::kScalar);
}

TEST(GemmDeterminism, SimdRowPartitions) {
  CheckRowPartitionDeterminism(KernelKind::kSimd);
}

TEST(GemmDeterminism, PortableRowPartitions) {
  ScopedSimdLevel force(SimdLevel::kNone);
  CheckRowPartitionDeterminism(KernelKind::kSimd);
}

TEST(GemmDeterminism, OneHotHintIsExact) {
  Rng rng(19);
  const Matrix a = OneHotishMatrix(21, 93, &rng);
  const Matrix b = RandomMatrix(93, 40, &rng);
  for (const KernelKind kernel : {KernelKind::kScalar, KernelKind::kSimd}) {
    Matrix dense, hinted;
    GemmNN(a, b, &dense, false, kernel, InputHint::kDense);
    GemmNN(a, b, &hinted, false, kernel, InputHint::kOneHot);
    ExpectBitIdentical(dense, hinted);
  }
}

TEST(Quantize, RoundTripWithinHalfStep) {
  Rng rng(23);
  Matrix w = RandomMatrix(47, 29, &rng);
  // A masked column and a masked block, as MADE weights have.
  for (size_t i = 0; i < w.rows(); ++i) w.At(i, 3) = 0.0f;
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 20; j < 29; ++j) w.At(i, j) = 0.0f;
  }
  QuantizedWeights q;
  QuantizeWeightsPerColumn(w, &q);
  EXPECT_EQ(q.rows, w.rows());
  EXPECT_EQ(q.cols, w.cols());
  EXPECT_EQ(q.stride, PaddedStride(w.cols()));
  EXPECT_EQ(q.scales[3], 0.0f);  // all-zero column

  Matrix dq;
  DequantizeWeights(q, &dq);
  for (size_t i = 0; i < w.rows(); ++i) {
    for (size_t j = 0; j < w.cols(); ++j) {
      const float scale = q.scales[j];
      // Symmetric round-to-nearest: at most half a quantization step off
      // (plus fp slack).
      EXPECT_NEAR(w.At(i, j), dq.At(i, j), 0.5f * scale + 1e-6f)
          << "at (" << i << ", " << j << ")";
      // Exact zeros stay exact (masking invariant).
      if (w.At(i, j) == 0.0f) EXPECT_EQ(dq.At(i, j), 0.0f);
    }
  }
}

void CheckInt8MatchesDequantReference() {
  Rng rng(29);
  for (const Shape& s : kShapes) {
    const Matrix a = RandomMatrix(s.m, s.k, &rng);
    const Matrix w = RandomMatrix(s.k, s.n, &rng);
    QuantizedWeights q;
    QuantizeWeightsPerColumn(w, &q);
    Matrix dq;
    DequantizeWeights(q, &dq);
    Matrix ref;
    GemmNN(a, dq, &ref, false, KernelKind::kScalar);
    Matrix got;
    GemmNNInt8(a, q, &got);
    // Same math, different association (scale distributed vs applied
    // last): epsilon-bounded, scaled to the reduction length.
    const double tol = 1e-4 * std::sqrt(static_cast<double>(s.k)) + 1e-5;
    ExpectNear(ref, got, tol);
  }
}

TEST(GemmInt8, MatchesDequantizedScalarReference) {
  CheckInt8MatchesDequantReference();
}

TEST(GemmInt8, PortableFallbackMatchesReference) {
  ScopedSimdLevel force(SimdLevel::kNone);
  CheckInt8MatchesDequantReference();
}

TEST(GemmInt8, RowPartitionsDeterministic) {
  Rng rng(31);
  const size_t m = 19, k = 45, n = 26;
  const Matrix a = RandomMatrix(m, k, &rng);
  const Matrix w = RandomMatrix(k, n, &rng);
  QuantizedWeights q;
  QuantizeWeightsPerColumn(w, &q);
  Matrix full;
  GemmNNInt8(a, q, &full);
  for (const size_t sub : {1ul, 5ul, 18ul}) {
    Matrix asub(sub, k);
    for (size_t i = 0; i < sub; ++i) {
      std::memcpy(asub.Row(i), a.Row(i), k * sizeof(float));
    }
    Matrix csub;
    GemmNNInt8(asub, q, &csub);
    for (size_t i = 0; i < sub; ++i) {
      ASSERT_EQ(0,
                std::memcmp(full.Row(i), csub.Row(i), n * sizeof(float)))
          << "sub " << sub << " row " << i;
    }
  }
}

TEST(MatrixStorage, AlignmentAndPaddedStride) {
  Matrix m(5, 17);
  EXPECT_EQ(m.stride(), 32u);  // 17 -> next multiple of 16
  EXPECT_EQ(m.stride() % kMatrixRowAlignFloats, 0u);
  for (size_t r = 0; r < m.rows(); ++r) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(r)) % kMatrixRowAlignBytes,
              0u);
  }
  EXPECT_EQ(m.size(), m.rows() * m.stride());
}

TEST(MatrixStorage, PaddingStaysZero) {
  Matrix m(4, 20);
  m.Fill(3.5f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    for (size_t j = m.cols(); j < m.stride(); ++j) {
      EXPECT_EQ(row[j], 0.0f) << "padding at (" << r << ", " << j << ")";
    }
  }
  // GEMM outputs keep padding zero because B's padding is zero.
  Rng rng(37);
  const Matrix a = RandomMatrix(6, 9, &rng);
  const Matrix b = RandomMatrix(9, 20, &rng);
  for (const KernelKind kernel : {KernelKind::kScalar, KernelKind::kSimd}) {
    Matrix c;
    GemmNN(a, b, &c, false, kernel);
    for (size_t r = 0; r < c.rows(); ++r) {
      const float* row = c.Row(r);
      for (size_t j = c.cols(); j < c.stride(); ++j) {
        EXPECT_EQ(row[j], 0.0f);
      }
    }
  }
  // Shrinking cols within one stride class must clear the old tail.
  Matrix s(2, 20);
  s.Fill(1.0f);
  s.Resize(2, 17);  // same 32-float stride
  for (size_t r = 0; r < s.rows(); ++r) {
    const float* row = s.Row(r);
    for (size_t j = s.cols(); j < s.stride(); ++j) EXPECT_EQ(row[j], 0.0f);
  }
}

TEST(MatrixStorage, ResizePreservesLeadingRowsWhenColsUnchanged) {
  Matrix m(3, 10);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 10; ++c) {
      m.At(r, c) = static_cast<float>(r * 100 + c);
    }
  }
  m.Resize(5, 10);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 10; ++c) {
      EXPECT_EQ(m.At(r, c), static_cast<float>(r * 100 + c));
    }
  }
  m.Resize(2, 10);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 10; ++c) {
      EXPECT_EQ(m.At(r, c), static_cast<float>(r * 100 + c));
    }
  }
}

}  // namespace
}  // namespace naru
