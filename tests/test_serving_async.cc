// Tests for the streaming serving surface (serve/async_engine.h) and the
// size-aware LRU result caches (serve/lru_cache.h). The async contract
// under test: Submit() results are bit-identical to the sequential
// per-query path for a fixed seed — across engine thread counts,
// micro-batch sizes, max-wait deadlines, concurrent submitters, and LRU
// eviction histories.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "query/workload.h"
#include "serve/async_engine.h"
#include "serve/lru_cache.h"
#include "serve/request.h"

namespace naru {
namespace {

Table SmallTable(uint64_t seed) {
  return MakeRandomTable(600, {7, 5, 9, 4, 6}, seed, /*skew=*/1.0);
}

std::unique_ptr<MadeModel> SmallTrainedModel(const Table& table,
                                             uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = seed;
  auto model = std::make_unique<MadeModel>(
      std::vector<size_t>{7, 5, 9, 4, 6}, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 128;
  Trainer(model.get(), tcfg).Train(table);
  return model;
}

std::vector<Query> AsyncQueries(const Table& table, uint64_t seed) {
  WorkloadConfig wcfg;
  wcfg.num_queries = 20;
  wcfg.min_filters = 1;
  wcfg.max_filters = 5;
  wcfg.seed = seed;
  std::vector<Query> queries = GenerateWorkload(table, wcfg);
  // Duplicates and an all-wildcard query exercise coalescing and the
  // exact shortcuts through the async path too.
  queries.push_back(queries[0]);
  queries.push_back(queries[3]);
  std::vector<ValueSet> all;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    all.push_back(ValueSet::All(table.column(c).DomainSize()));
  }
  queries.emplace_back(all);
  return queries;
}

TEST(LruResultCache, EvictsLeastRecentlyUsedWithinBudget) {
  LruResultCache cache;
  const std::string a(10, 'a'), b(10, 'b'), c(10, 'c');
  const size_t entry = LruResultCache::EntryBytes(a);
  const size_t budget = 2 * entry;  // room for exactly two entries

  EXPECT_EQ(cache.Insert(a, 1.0, budget), 0u);
  EXPECT_EQ(cache.Insert(b, 2.0, budget), 0u);
  EXPECT_EQ(cache.bytes(), 2 * entry);

  // Touch `a` so `b` becomes least recently used, then overflow.
  double v = 0;
  ASSERT_TRUE(cache.Lookup(a, &v));
  EXPECT_EQ(v, 1.0);
  EXPECT_EQ(cache.Insert(c, 3.0, budget), 1u);  // evicts b
  EXPECT_FALSE(cache.Lookup(b, &v));
  ASSERT_TRUE(cache.Lookup(a, &v));
  ASSERT_TRUE(cache.Lookup(c, &v));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), budget);
}

TEST(LruResultCache, RefreshUpdatesValueWithoutGrowth) {
  LruResultCache cache;
  const std::string key = "key";
  cache.Insert(key, 1.0, 1 << 20);
  const size_t bytes = cache.bytes();
  cache.Insert(key, 2.0, 1 << 20);
  EXPECT_EQ(cache.bytes(), bytes);
  EXPECT_EQ(cache.entries(), 1u);
  double v = 0;
  ASSERT_TRUE(cache.Lookup(key, &v));
  EXPECT_EQ(v, 2.0);
}

TEST(LruResultCache, OversizedEntryIsEvictedImmediately) {
  LruResultCache cache;
  const std::string huge(4096, 'x');
  EXPECT_EQ(cache.Insert(huge, 1.0, 64), 1u);  // larger than the budget
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(LruResultCache, ClearResetsEverything) {
  LruResultCache cache;
  cache.Insert("a", 1.0, 64);
  cache.Insert(std::string(128, 'b'), 2.0, 64);
  EXPECT_GT(cache.evictions(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(AsyncEngine, SubmitBitIdenticalToSequentialAcrossConfigs) {
  Table table = SmallTable(3);
  auto model = SmallTrainedModel(table, 3);
  const auto queries = AsyncQueries(table, 61);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<double> sequential;
  for (const auto& q : queries) {
    sequential.push_back(est.EstimateSelectivity(q));
  }

  struct Config {
    size_t threads, max_batch;
    double max_wait_ms;
  };
  // Extremes on every axis: strictly serial / singleton batches / zero
  // deadline, and wide pools / full coalescing / long deadlines.
  const std::vector<Config> grid = {
      {1, 1, 0.0}, {2, 3, 1.0}, {4, 64, 5.0}, {2, 64, 0.0}};
  for (const Config& c : grid) {
    AsyncEngineConfig acfg;
    acfg.max_batch_size = c.max_batch;
    acfg.max_wait_ms = c.max_wait_ms;
    acfg.engine.num_threads = c.threads;
    AsyncEngine engine(acfg);
    std::vector<std::future<double>> futures;
    for (const auto& q : queries) futures.push_back(engine.Submit(&est, q));
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(futures[i].get(), sequential[i])
          << "query " << i << " threads=" << c.threads
          << " max_batch=" << c.max_batch << " wait=" << c.max_wait_ms;
    }
    // Futures resolve before the dispatcher bumps `completed`; Drain's
    // watermark is the ordering guarantee the counters need.
    engine.Drain();
    const auto stats = engine.async_stats();
    EXPECT_EQ(stats.submitted, queries.size());
    EXPECT_EQ(stats.completed, queries.size());
    EXPECT_GE(stats.batches, 1u);
  }
}

TEST(AsyncEngine, DeadlineFlushFiresWithoutFurtherSubmissions) {
  Table table = SmallTable(5);
  auto model = SmallTrainedModel(table, 5);
  const auto queries = AsyncQueries(table, 67);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 1000;  // never fills: only the deadline can flush
  acfg.max_wait_ms = 5.0;
  acfg.engine.num_threads = 2;
  AsyncEngine engine(acfg);

  auto f0 = engine.Submit(&est, queries[0]);
  auto f1 = engine.Submit(&est, queries[1]);
  // No Drain, no further submissions: the max-wait deadline must flush.
  EXPECT_EQ(f0.get(), est.EstimateSelectivity(queries[0]));
  EXPECT_EQ(f1.get(), est.EstimateSelectivity(queries[1]));
  EXPECT_GE(engine.async_stats().deadline_flushes, 1u);
}

TEST(AsyncEngine, OnCompleteCallbackSeesTheResult) {
  Table table = SmallTable(7);
  auto model = SmallTrainedModel(table, 7);
  const auto queries = AsyncQueries(table, 71);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngine engine(AsyncEngineConfig{.max_batch_size = 4});
  double callback_value = -1.0;
  auto fut = engine.Submit(&est, queries[0],
                           [&](double sel) { callback_value = sel; });
  const double sel = fut.get();  // sequences the callback's write
  EXPECT_EQ(callback_value, sel);
  EXPECT_EQ(sel, est.EstimateSelectivity(queries[0]));
}

TEST(AsyncEngine, ConcurrentSubmittersStayBitIdentical) {
  Table table = SmallTable(11);
  auto model = SmallTrainedModel(table, 11);
  const auto queries = AsyncQueries(table, 73);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<double> sequential;
  for (const auto& q : queries) {
    sequential.push_back(est.EstimateSelectivity(q));
  }

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 8;
  acfg.max_wait_ms = 1.0;
  acfg.engine.num_threads = 2;
  AsyncEngine engine(acfg);

  constexpr size_t kSubmitters = 4;
  constexpr size_t kRounds = 3;
  std::vector<std::vector<std::future<double>>> futures(kSubmitters);
  {
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t r = 0; r < kRounds; ++r) {
          for (const auto& q : queries) {
            futures[t].push_back(engine.Submit(&est, q));
          }
        }
      });
    }
    for (auto& th : submitters) th.join();
  }
  engine.Drain();

  const auto stats = engine.async_stats();
  EXPECT_EQ(stats.submitted, kSubmitters * kRounds * queries.size());
  EXPECT_EQ(stats.completed, stats.submitted);
  for (size_t t = 0; t < kSubmitters; ++t) {
    for (size_t i = 0; i < futures[t].size(); ++i) {
      EXPECT_EQ(futures[t][i].get(), sequential[i % queries.size()])
          << "submitter " << t << " request " << i;
    }
  }
}

TEST(AsyncEngine, LruBudgetHonoredUnderConcurrentSubmit) {
  Table table = SmallTable(13);
  auto model = SmallTrainedModel(table, 13);
  const auto queries = AsyncQueries(table, 79);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<double> sequential;
  for (const auto& q : queries) {
    sequential.push_back(est.EstimateSelectivity(q));
  }

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 4;
  acfg.max_wait_ms = 0.5;
  acfg.engine.num_threads = 2;
  // A budget far below the workload's footprint: most inserts must evict.
  acfg.engine.cache_budget_bytes = 3 * LruResultCache::kEntryOverheadBytes;
  AsyncEngine engine(acfg);

  constexpr size_t kSubmitters = 3;
  std::vector<std::vector<std::future<double>>> futures(kSubmitters);
  {
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t r = 0; r < 2; ++r) {
          for (const auto& q : queries) {
            futures[t].push_back(engine.Submit(&est, q));
          }
        }
      });
    }
    for (auto& th : submitters) th.join();
  }
  engine.Drain();

  // Eviction churned the caches but never changed a value...
  for (size_t t = 0; t < kSubmitters; ++t) {
    for (size_t i = 0; i < futures[t].size(); ++i) {
      ASSERT_EQ(futures[t][i].get(), sequential[i % queries.size()])
          << "submitter " << t << " request " << i;
    }
  }
  // ...and the byte budget held throughout (occupancy is a live snapshot;
  // it can only ever be at or under budget because Insert evicts before
  // returning).
  const auto stats = engine.stats();
  EXPECT_GT(stats.memo_evictions, 0u);
  EXPECT_LE(stats.memo_bytes, acfg.engine.cache_budget_bytes);
  EXPECT_LE(stats.marginal_bytes, acfg.engine.cache_budget_bytes);
}

// Satellite of the plan-layer PR: a query submitted while its identical
// twin is pending (queued or mid-walk) joins the twin's computation
// instead of recomputing — futures and callbacks all resolve to the one
// deterministic result, and Drain still accounts for every submission.
TEST(AsyncEngine, InFlightDuplicatesJoinTheirTwin) {
  Table table = SmallTable(19);
  auto model = SmallTrainedModel(table, 19);
  const auto queries = AsyncQueries(table, 89);
  const Query& hot = queries[0];

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 400;  // slow enough that twins overlap in flight
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);
  const double want = est.EstimateSelectivity(hot);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 1;  // every primary dispatches alone
  acfg.max_wait_ms = 0.0;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;  // joining, not the memo, must dedup
  AsyncEngine engine(acfg);

  std::atomic<size_t> callbacks{0};
  std::vector<std::future<double>> futures;
  const size_t kCopies = 24;
  for (size_t i = 0; i < kCopies; ++i) {
    futures.push_back(
        engine.Submit(&est, hot, [&](double) { ++callbacks; }));
  }
  engine.Drain();

  for (auto& f : futures) EXPECT_EQ(f.get(), want);
  EXPECT_EQ(callbacks.load(), kCopies);  // every duplicate's callback fired

  const auto stats = engine.async_stats();
  EXPECT_EQ(stats.submitted, kCopies);
  EXPECT_EQ(stats.completed, kCopies);  // joiners count toward Drain
  // The first copy computes; while it is queued or walking, later copies
  // join it. (A copy submitted in the gap after a delivery starts a new
  // primary, so the exact join count is timing-dependent — but with 24
  // rapid submissions of a slow query, some must have joined.)
  EXPECT_GT(stats.joined_duplicates, 0u);
  EXPECT_LT(stats.batches, kCopies);

  // Distinct queries never join each other.
  auto fa = engine.Submit(&est, queries[1]);
  auto fb = engine.Submit(&est, queries[2]);
  EXPECT_EQ(fa.get(), est.EstimateSelectivity(queries[1]));
  EXPECT_EQ(fb.get(), est.EstimateSelectivity(queries[2]));
}

// Drain must cover every pre-Drain submission even while another thread
// keeps joining duplicates to in-flight queries: joiner deliveries land
// out of FIFO order, so the watermark has to be counted in primaries
// (queue entries), not total submissions — a total-count watermark can be
// reached by joiner inflation while later pre-Drain queries still wait.
TEST(AsyncEngine, DrainCoversPendingWorkDespiteConcurrentJoins) {
  Table table = SmallTable(21);
  auto model = SmallTrainedModel(table, 21);
  const auto queries = AsyncQueries(table, 91);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 300;  // slow enough that joins overlap the drain
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 1;
  acfg.max_wait_ms = 0.0;
  acfg.engine.enable_cache = false;
  AsyncEngine engine(acfg);

  std::vector<std::future<double>> futures;
  for (size_t i = 0; i < 5; ++i) {
    futures.push_back(engine.Submit(&est, queries[i]));
  }
  // A side thread floods duplicates of the first query while we drain.
  std::atomic<bool> stop{false};
  std::thread joiner([&] {
    while (!stop.load()) engine.Submit(&est, queries[0]);
  });
  engine.Drain();
  // Every pre-Drain future must be ready the moment Drain returns.
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "query " << i << " not delivered by Drain";
  }
  stop.store(true);
  joiner.join();
  engine.Drain();
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), est.EstimateSelectivity(queries[i]));
  }
}

// Shutdown-path race: the destructor runs while submissions are still
// pending and mid-walk. ~AsyncEngine's contract is "deliver everything
// already accepted, then join the dispatcher" — so every future obtained
// before destruction must be ready the instant the destructor returns,
// carrying its real (bit-identical) result rather than a broken promise.
// Multiple submitter threads racing each other right up to the
// destruction point exercise the stop_/drain handshake from both sides;
// under TSan this is the test that instruments destructor-vs-Submit.
TEST(AsyncEngine, DestructorDeliversEverythingSubmittedBeforeIt) {
  Table table = SmallTable(33);
  auto model = SmallTrainedModel(table, 33);
  const auto queries = AsyncQueries(table, 53);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 300;  // slow walks: destruction lands mid-flight
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<double> sequential;
  sequential.reserve(queries.size());
  for (const auto& q : queries) {
    sequential.push_back(est.EstimateSelectivity(q));
  }

  constexpr size_t kSubmitters = 3;
  std::vector<std::vector<std::future<double>>> futures(kSubmitters);
  {
    AsyncEngineConfig acfg;
    acfg.max_batch_size = 4;
    acfg.max_wait_ms = 0.5;
    acfg.engine.enable_cache = false;
    AsyncEngine engine(acfg);

    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        futures[t].reserve(queries.size());
        for (const auto& q : queries) {
          futures[t].push_back(engine.Submit(&est, q));
        }
      });
    }
    // Submit() on a destroyed engine is outside any contract, so the
    // threads must be joined first — but nothing waits on the futures:
    // the destructor fires while essentially all walks are queued or
    // mid-batch on the dispatcher.
    for (auto& th : submitters) th.join();
  }  // ~AsyncEngine races the dispatcher + worker pool here.

  for (size_t t = 0; t < kSubmitters; ++t) {
    ASSERT_EQ(futures[t].size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(futures[t][i].wait_for(std::chrono::seconds(0)),
                std::future_status::ready)
          << "submitter " << t << " query " << i
          << " not delivered by the destructor";
      EXPECT_EQ(futures[t][i].get(), sequential[i])
          << "submitter " << t << " query " << i;
    }
  }
}

// Tentpole of the typed-API redesign: the legacy future<double> Submit is
// a thin adapter over the typed surface, so both must agree bit-for-bit
// with the sequential path, and typed results must carry provenance and
// queue/compute latency attribution.
TEST(AsyncEngine, TypedAndLegacySubmitAgreeWithSequential) {
  Table table = SmallTable(23);
  auto model = SmallTrainedModel(table, 23);
  const auto queries = AsyncQueries(table, 95);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 8;
  acfg.max_wait_ms = 1.0;
  acfg.engine.num_threads = 2;
  AsyncEngine engine(acfg);

  std::vector<std::future<EstimateResult>> typed;
  std::vector<std::future<double>> legacy;
  for (const auto& q : queries) {
    typed.push_back(engine.Submit(&est, EstimateRequest(q)));
    legacy.push_back(engine.Submit(&est, q));
  }
  engine.Drain();
  for (size_t i = 0; i < queries.size(); ++i) {
    const EstimateResult r = typed[i].get();
    const double want = est.EstimateSelectivity(queries[i]);
    ASSERT_TRUE(r.ok()) << "query " << i;
    EXPECT_EQ(r.estimate, want) << "query " << i;
    EXPECT_EQ(legacy[i].get(), want) << "query " << i;
    EXPECT_NE(r.provenance, ResultProvenance::kUnknown);
    EXPECT_GE(r.queue_ms, 0.0);
    EXPECT_GE(r.compute_ms, 0.0);
  }
}

// Satellite of the typed-API redesign: the dispatcher flushes by priority
// class, not FIFO. A high-priority request submitted AFTER a low-priority
// one must be dispatched (and complete) before it whenever the dispatcher
// is backlogged.
TEST(AsyncEngine, HighPriorityFlushesBeforeEarlierLowPriority) {
  Table table = SmallTable(29);
  auto model = SmallTrainedModel(table, 29);
  const auto queries = AsyncQueries(table, 97);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 200;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 1;  // one request per flush: order is observable
  acfg.max_wait_ms = 0.0;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;
  AsyncEngine engine(acfg);

  std::mutex mu;
  std::vector<std::string> completion_order;
  const auto record = [&](const char* name) {
    return [&, name](const EstimateResult&) {
      std::lock_guard<std::mutex> lock(mu);
      completion_order.emplace_back(name);
    };
  };

  // A heavy blocker occupies the dispatcher (per-request budget makes it
  // slow); the low- and high-priority requests are submitted only once it
  // is mid-walk, so they must land in later flushes, cut by priority.
  EstimateRequest blocker(queries[0]);
  blocker.options.num_samples = 30000;
  auto f_blocker = engine.Submit(&est, std::move(blocker), record("blocker"));
  while (engine.async_stats().batches == 0) {
    std::this_thread::yield();
  }
  EstimateRequest low(queries[1]);
  low.options.priority = RequestPriority::kLow;
  auto f_low = engine.Submit(&est, std::move(low), record("low"));
  EstimateRequest high(queries[2]);
  high.options.priority = RequestPriority::kHigh;
  auto f_high = engine.Submit(&est, std::move(high), record("high"));
  // Wait on the futures, NOT Drain(): an active drain deliberately
  // reverts flushing to FIFO-by-arrival (its no-starvation guarantee),
  // which would hide exactly the priority ordering under test.
  const EstimateResult r_blocker = f_blocker.get();
  const EstimateResult r_low = f_low.get();
  const EstimateResult r_high = f_high.get();

  ASSERT_EQ(completion_order.size(), 3u);
  size_t low_at = 0, high_at = 0;
  for (size_t i = 0; i < completion_order.size(); ++i) {
    if (completion_order[i] == "low") low_at = i;
    if (completion_order[i] == "high") high_at = i;
  }
  EXPECT_LT(high_at, low_at) << "high priority did not jump the queue";
  EXPECT_GE(engine.async_stats().priority_flushes, 1u);
  // The dispatcher-side counter is merged into the EngineStats snapshot.
  EXPECT_EQ(engine.stats().priority_flushes,
            engine.async_stats().priority_flushes);

  // Priority is a scheduling knob only: every estimate is still the
  // sequential one (the blocker under its per-request budget).
  EstimateOptions heavy;
  heavy.num_samples = 30000;
  EXPECT_EQ(r_blocker.estimate, est.Estimate(queries[0], heavy).estimate);
  EXPECT_EQ(r_low.estimate, est.EstimateSelectivity(queries[1]));
  EXPECT_EQ(r_high.estimate, est.EstimateSelectivity(queries[2]));
}

// Satellite: expired deadlines shed with a typed DEADLINE_EXCEEDED result
// — resolved futures, never blocked Drains or crashes — while live
// requests in the same micro-batches stay bit-identical.
TEST(AsyncEngine, ExpiredDeadlinesShedTypedResults) {
  Table table = SmallTable(31);
  auto model = SmallTrainedModel(table, 31);
  const auto queries = AsyncQueries(table, 101);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 4;
  acfg.max_wait_ms = 0.5;
  acfg.engine.num_threads = 2;
  AsyncEngine engine(acfg);

  std::vector<std::future<EstimateResult>> futures;
  std::vector<uint8_t> expired;
  for (size_t round = 0; round < 2; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EstimateRequest request(queries[i]);
      const bool expire = (i % 3) == 1;
      if (expire) {
        request.options.deadline = EstimateOptions::DeadlineInMs(-5.0);
      }
      expired.push_back(expire ? 1 : 0);
      futures.push_back(engine.Submit(&est, std::move(request)));
    }
  }
  engine.Drain();

  size_t shed = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << i << " not resolved by Drain";
    const EstimateResult r = futures[i].get();
    if (expired[i]) {
      EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
          << "request " << i;
      EXPECT_TRUE(std::isnan(r.estimate));
      EXPECT_EQ(r.provenance, ResultProvenance::kShed);
      ++shed;
    } else {
      ASSERT_TRUE(r.ok()) << "request " << i;
      EXPECT_EQ(r.estimate,
                est.EstimateSelectivity(queries[i % queries.size()]));
    }
  }
  EXPECT_GT(shed, 0u);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed_deadline, shed);
  EXPECT_EQ(stats.results_shed, shed);
}

// Drain must not be starved by ongoing higher-priority traffic: while a
// drain is active, flushes revert to FIFO-by-arrival, so a pre-Drain
// low-priority request completes even under a sustained high-priority
// flood.
TEST(AsyncEngine, DrainCompletesLowPriorityDespiteHighPriorityFlood) {
  Table table = SmallTable(37);
  auto model = SmallTrainedModel(table, 37);
  const auto queries = AsyncQueries(table, 103);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 150;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 2;  // narrow flushes: priority order would matter
  acfg.max_wait_ms = 0.0;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;  // every flood request costs a walk
  AsyncEngine engine(acfg);

  EstimateRequest low(queries[0]);
  low.options.priority = RequestPriority::kLow;
  auto f_low = engine.Submit(&est, std::move(low));

  // A side thread floods high-priority requests (cycling queries so the
  // in-flight join cannot collapse them into one computation) for the
  // whole duration of the drain.
  std::atomic<bool> stop{false};
  std::thread flood([&] {
    size_t i = 1;
    while (!stop.load()) {
      EstimateRequest high(queries[i++ % queries.size()]);
      high.options.priority = RequestPriority::kHigh;
      engine.Submit(&est, std::move(high));
    }
  });
  engine.Drain();
  // The pre-Drain low-priority future must be ready the moment Drain
  // returns — the flood cannot push it past the barrier.
  EXPECT_EQ(f_low.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  stop.store(true);
  flood.join();
  engine.Drain();
  EXPECT_EQ(f_low.get().estimate, est.EstimateSelectivity(queries[0]));
}

// Parks the dispatcher thread inside a request's on_complete callback
// until released — the deterministic way to stage a known queue state
// (fill queues, register a Drain, ...) while the dispatcher cannot cut.
struct DispatcherHostage {
  std::mutex mu;
  std::condition_variable cv;
  bool released = false;
  std::atomic<bool> entered{false};

  std::function<void(const EstimateResult&)> Callback() {
    return [this](const EstimateResult&) {
      entered.store(true);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return released; });
    };
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      released = true;
    }
    cv.notify_all();
  }
};

// Tentpole of the overload-safety PR: with max_pending set, a full queue
// sheds the LOWEST pending priority class first (oldest request of that
// class), rejects an incoming request only when it is itself lowest, and
// never admission-sheds a higher class while a lower one has pending
// work. Shed results are typed RESOURCE_EXHAUSTED; the queue depth never
// exceeds the bound; survivors stay bit-identical.
TEST(AsyncEngine, AdmissionControlShedsLowestClassFirstAndBoundsQueue) {
  Table table = SmallTable(41);
  auto model = SmallTrainedModel(table, 41);
  const auto queries = AsyncQueries(table, 107);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 1;
  acfg.max_wait_ms = 0.0;
  acfg.max_pending = 3;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;
  AsyncEngine engine(acfg);

  // Park the dispatcher so the queue state below is fully deterministic.
  DispatcherHostage hostage;
  auto f_blocker =
      engine.Submit(&est, EstimateRequest(queries[0]), hostage.Callback());
  while (!hostage.entered.load()) std::this_thread::yield();

  const auto at = [&](size_t i, RequestPriority pri) {
    EstimateRequest req(queries[i]);
    req.options.priority = pri;
    return req;
  };
  // Fill the queue with three lows.
  auto f_low1 = engine.Submit(&est, at(1, RequestPriority::kLow));
  auto f_low2 = engine.Submit(&est, at(2, RequestPriority::kLow));
  auto f_low3 = engine.Submit(&est, at(3, RequestPriority::kLow));

  // A high against the full queue evicts the OLDEST low — immediately.
  auto f_high = engine.Submit(&est, at(4, RequestPriority::kHigh));
  ASSERT_EQ(f_low1.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "the evicted victim's future must resolve at once";
  const EstimateResult low1 = f_low1.get();
  EXPECT_EQ(low1.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(std::isnan(low1.estimate));
  EXPECT_EQ(low1.provenance, ResultProvenance::kShed);
  EXPECT_GE(low1.queue_ms, 0.0);

  // An incoming low against the (again) full queue is itself lowest:
  // rejected, the pending lows keep their place.
  auto f_low4 = engine.Submit(&est, at(5, RequestPriority::kLow));
  ASSERT_EQ(f_low4.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f_low4.get().status.code(), StatusCode::kResourceExhausted);

  // An incoming normal outranks the pending lows: the next-oldest low
  // pays.
  auto f_normal = engine.Submit(&est, at(6, RequestPriority::kNormal));
  ASSERT_EQ(f_low2.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f_low2.get().status.code(), StatusCode::kResourceExhausted);

  {
    const auto astats = engine.async_stats();
    EXPECT_EQ(astats.shed_admission, 3u);
    EXPECT_LE(astats.max_pending_seen, acfg.max_pending);
  }

  hostage.Release();
  engine.Drain();

  // Survivors — including every request of a class above low — completed
  // with bit-identical estimates.
  EXPECT_EQ(f_blocker.get().estimate, est.EstimateSelectivity(queries[0]));
  EXPECT_EQ(f_low3.get().estimate, est.EstimateSelectivity(queries[3]));
  EXPECT_EQ(f_high.get().estimate, est.EstimateSelectivity(queries[4]));
  EXPECT_EQ(f_normal.get().estimate, est.EstimateSelectivity(queries[6]));

  const auto astats = engine.async_stats();
  EXPECT_EQ(astats.submitted, 7u);
  EXPECT_EQ(astats.completed, 7u);  // shed deliveries count as completed
  EXPECT_LE(astats.max_pending_seen, acfg.max_pending);
  // The dispatcher-owned counter is merged into the EngineStats snapshot,
  // and admission sheds are delivered shed results.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed_admission, 3u);
  EXPECT_EQ(stats.results_shed, 3u);
  EXPECT_EQ(stats.shed_deadline, 0u);
}

// Satellite: deadline-aware admission. A FULL queue first looks for a
// pending request whose deadline has ALREADY EXPIRED — dead weight that
// dispatch would shed anyway — and evicts that victim (typed
// DEADLINE_EXCEEDED, retry_after_ms 0: retrying an expired request is
// pointless) regardless of class order, before falling back to the
// lowest-class-first policy. Rejected overflow still gets
// RESOURCE_EXHAUSTED, now with a positive retry-after hint.
TEST(AsyncEngine, AdmissionEvictsExpiredPendingVictimFirst) {
  Table table = SmallTable(47);
  auto model = SmallTrainedModel(table, 47);
  const auto queries = AsyncQueries(table, 113);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 1;
  acfg.max_wait_ms = 0.0;
  acfg.max_pending = 3;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;
  AsyncEngine engine(acfg);

  // Park the dispatcher so the queue state below is fully deterministic.
  DispatcherHostage hostage;
  auto f_blocker =
      engine.Submit(&est, EstimateRequest(queries[0]), hostage.Callback());
  while (!hostage.entered.load()) std::this_thread::yield();

  const auto at = [&](size_t i, RequestPriority pri) {
    EstimateRequest req(queries[i]);
    req.options.priority = pri;
    return req;
  };

  // Fill the queue: lowA (live), lowB (deadline expired long ago — Submit
  // does not pre-shed, so it sits pending), lowC (live).
  auto f_lowA = engine.Submit(&est, at(1, RequestPriority::kLow));
  auto expired = at(2, RequestPriority::kLow);
  expired.options.deadline = EstimateOptions::DeadlineInMs(-60000.0);
  auto f_lowB = engine.Submit(&est, std::move(expired));
  auto f_lowC = engine.Submit(&est, at(3, RequestPriority::kLow));
  ASSERT_NE(f_lowB.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "an expired deadline must not be shed at submit time";

  // A normal against the full queue evicts the EXPIRED low — not lowA,
  // the oldest request of the lowest class.
  auto f_norm = engine.Submit(&est, at(4, RequestPriority::kNormal));
  ASSERT_EQ(f_lowB.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_NE(f_lowA.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "a live request must not pay while an expired one pends";
  const EstimateResult lowB = f_lowB.get();
  EXPECT_EQ(lowB.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(std::isnan(lowB.estimate));
  EXPECT_EQ(lowB.provenance, ResultProvenance::kShed);
  EXPECT_EQ(lowB.retry_after_ms, 0.0);
  EXPECT_GE(lowB.queue_ms, 0.0);

  // The queue is full again with nothing expired: an incoming low is
  // itself lowest — rejected, and told how long to back off.
  auto f_lowD = engine.Submit(&est, at(5, RequestPriority::kLow));
  ASSERT_EQ(f_lowD.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const EstimateResult lowD = f_lowD.get();
  EXPECT_EQ(lowD.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(lowD.retry_after_ms, 0.0)
      << "a rejected request must carry a retry-after hint";

  // Expiry beats class order in BOTH directions. Stage an expired HIGH:
  // nothing pending is expired, so it evicts lowA by the fallback
  // lowest-class policy...
  auto dead_high = at(6, RequestPriority::kHigh);
  dead_high.options.deadline = EstimateOptions::DeadlineInMs(-1000.0);
  auto f_high = engine.Submit(&est, std::move(dead_high));
  ASSERT_EQ(f_lowA.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f_lowA.get().status.code(), StatusCode::kResourceExhausted);
  // ...and then an incoming LOW evicts the expired high.
  auto f_lowE = engine.Submit(&est, at(7, RequestPriority::kLow));
  ASSERT_EQ(f_high.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const EstimateResult high = f_high.get();
  EXPECT_EQ(high.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(high.provenance, ResultProvenance::kShed);
  EXPECT_EQ(high.retry_after_ms, 0.0);

  {
    const auto astats = engine.async_stats();
    EXPECT_EQ(astats.shed_admission, 4u);
    EXPECT_EQ(astats.expired_victims, 2u);
    EXPECT_LE(astats.max_pending_seen, acfg.max_pending);
  }

  hostage.Release();
  engine.Drain();

  // Survivors completed with bit-identical estimates.
  EXPECT_EQ(f_blocker.get().estimate, est.EstimateSelectivity(queries[0]));
  EXPECT_EQ(f_lowC.get().estimate, est.EstimateSelectivity(queries[3]));
  EXPECT_EQ(f_norm.get().estimate, est.EstimateSelectivity(queries[4]));
  EXPECT_EQ(f_lowE.get().estimate, est.EstimateSelectivity(queries[7]));

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.shed_admission, 4u);
  EXPECT_EQ(stats.shed_expired_victims, 2u);
  EXPECT_EQ(stats.results_shed, 4u);
  EXPECT_EQ(stats.shed_deadline, 0u)
      << "admission evictions must not masquerade as dispatch sheds";
}

// Satellite bugfix: a flush forced by Drain (or stop) while the queue
// happens to hold exactly max_batch_size requests is a DRAIN flush — the
// old reason attribution checked the size branch first and miscounted it
// as a size flush.
TEST(AsyncEngine, DrainFlushOfFullQueueIsCountedAsDrainFlush) {
  Table table = SmallTable(43);
  auto model = SmallTrainedModel(table, 43);
  const auto queries = AsyncQueries(table, 109);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 3;
  acfg.max_wait_ms = 0.0;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;
  AsyncEngine engine(acfg);

  DispatcherHostage hostage;
  auto f_blocker =
      engine.Submit(&est, EstimateRequest(queries[0]), hostage.Callback());
  while (!hostage.entered.load()) std::this_thread::yield();

  // Exactly max_batch_size requests pile up, THEN a drain registers.
  std::vector<std::future<EstimateResult>> futures;
  for (size_t i = 1; i <= 3; ++i) {
    futures.push_back(engine.Submit(&est, EstimateRequest(queries[i])));
  }
  std::thread drainer([&] { engine.Drain(); });
  // The drain only needs the mutex (the dispatcher is parked outside it)
  // to register its waiter; give it ample time.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  hostage.Release();
  drainer.join();

  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().estimate,
              est.EstimateSelectivity(queries[i + 1]));
  }
  (void)f_blocker.get();
  const auto astats = engine.async_stats();
  EXPECT_GE(astats.drain_flushes, 1u)
      << "a drain-forced cut of a full queue is a drain flush";
  EXPECT_EQ(astats.size_flushes, 0u)
      << "it must not masquerade as a size flush";
}

// The opposite ordering: the queue reaches max_batch_size with NO drain
// active — that flush is a size flush.
TEST(AsyncEngine, SizeFlushWithoutDrainIsCountedAsSizeFlush) {
  Table table = SmallTable(47);
  auto model = SmallTrainedModel(table, 47);
  const auto queries = AsyncQueries(table, 113);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 3;
  acfg.max_wait_ms = 0.0;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;
  AsyncEngine engine(acfg);

  DispatcherHostage hostage;
  auto f_blocker =
      engine.Submit(&est, EstimateRequest(queries[0]), hostage.Callback());
  while (!hostage.entered.load()) std::this_thread::yield();

  std::vector<std::future<EstimateResult>> futures;
  for (size_t i = 1; i <= 3; ++i) {
    futures.push_back(engine.Submit(&est, EstimateRequest(queries[i])));
  }
  hostage.Release();
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get().estimate,
              est.EstimateSelectivity(queries[i + 1]));
  }
  (void)f_blocker.get();
  const auto astats = engine.async_stats();
  EXPECT_GE(astats.size_flushes, 1u);
  EXPECT_EQ(astats.drain_flushes, 0u);
}

// Tentpole: within a priority class the dispatcher cuts deadline-carrying
// requests first, tightest deadline first, while deadline-free requests
// keep FIFO among themselves — a near-deadline request is not stranded
// behind deadline-free traffic that arrived earlier.
TEST(AsyncEngine, TightestDeadlineIsCutFirstWithinAClass) {
  Table table = SmallTable(53);
  auto model = SmallTrainedModel(table, 53);
  const auto queries = AsyncQueries(table, 127);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  AsyncEngineConfig acfg;
  acfg.max_batch_size = 1;  // one request per flush: order is observable
  acfg.max_wait_ms = 0.0;
  acfg.engine.num_threads = 2;
  acfg.engine.enable_cache = false;
  AsyncEngine engine(acfg);

  DispatcherHostage hostage;
  auto f_blocker =
      engine.Submit(&est, EstimateRequest(queries[0]), hostage.Callback());
  while (!hostage.entered.load()) std::this_thread::yield();

  std::mutex mu;
  std::vector<std::string> completion_order;
  const auto record = [&](const char* name) {
    return [&, name](const EstimateResult&) {
      std::lock_guard<std::mutex> lock(mu);
      completion_order.emplace_back(name);
    };
  };

  // All normal priority; generous deadlines (nothing sheds). Arrival
  // order: deadline-free first, then loose, then tight.
  EstimateRequest free_req(queries[1]);
  auto f_free = engine.Submit(&est, std::move(free_req), record("free"));
  EstimateRequest loose(queries[2]);
  loose.options.deadline = EstimateOptions::DeadlineInMs(60000.0);
  auto f_loose = engine.Submit(&est, std::move(loose), record("loose"));
  EstimateRequest tight(queries[3]);
  tight.options.deadline = EstimateOptions::DeadlineInMs(30000.0);
  auto f_tight = engine.Submit(&est, std::move(tight), record("tight"));

  hostage.Release();
  // Wait on the futures, NOT Drain(): an active drain reverts to
  // FIFO-by-arrival, which would hide the ordering under test.
  const EstimateResult r_free = f_free.get();
  const EstimateResult r_loose = f_loose.get();
  const EstimateResult r_tight = f_tight.get();
  (void)f_blocker.get();

  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], "tight");
  EXPECT_EQ(completion_order[1], "loose");
  EXPECT_EQ(completion_order[2], "free");
  EXPECT_GE(engine.async_stats().deadline_reorders, 1u);

  // Scheduling only — every estimate is still the sequential one.
  EXPECT_EQ(r_free.estimate, est.EstimateSelectivity(queries[1]));
  EXPECT_EQ(r_loose.estimate, est.EstimateSelectivity(queries[2]));
  EXPECT_EQ(r_tight.estimate, est.EstimateSelectivity(queries[3]));
}

TEST(AsyncEngine, DestructorDrainsPendingSubmissions) {
  Table table = SmallTable(17);
  auto model = SmallTrainedModel(table, 17);
  const auto queries = AsyncQueries(table, 83);

  NaruEstimatorConfig ncfg;
  ncfg.num_samples = 100;
  ncfg.enumeration_threshold = 0;
  NaruEstimator est(model.get(), ncfg, 0);

  std::vector<std::future<double>> futures;
  {
    AsyncEngineConfig acfg;
    acfg.max_batch_size = 1000;   // would never flush by size
    acfg.max_wait_ms = 10000.0;   // nor by deadline within the test
    AsyncEngine engine(acfg);
    for (const auto& q : queries) futures.push_back(engine.Submit(&est, q));
  }  // destruction must flush and deliver everything
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(futures[i].get(), est.EstimateSelectivity(queries[i]))
        << "query " << i;
  }
}

}  // namespace
}  // namespace naru
