// Tests for tuple generation and the alternative Monte Carlo integrators:
// ancestral marginals, rejection estimation, weighted in-region draws
// (importance identities), the independence-MH chain, and conditional
// expectations. Where exact answers exist (small joints), estimates must
// converge to them.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/enumerator.h"
#include "core/generator.h"
#include "core/made.h"
#include "data/datasets.h"
#include "estimator/bayesnet.h"
#include "query/executor.h"

namespace naru {
namespace {

MadeModel::Config SmallConfig(uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.encoder.embed_dim = 4;
  cfg.seed = seed;
  return cfg;
}

// Exact P̂(X ∈ R) and exact E[g | X ∈ R] on a small joint by enumeration.
double ExactConditionalExpectation(
    ConditionalModel* model, const Query& query,
    const std::function<double(const int32_t*)>& g) {
  const size_t n = model->num_columns();
  std::vector<size_t> domains(n);
  for (size_t pos = 0; pos < n; ++pos) {
    domains[model->TableColumnOf(pos)] = model->DomainSize(pos);
  }
  IntMatrix tuple(1, n);
  std::vector<int32_t> idx(n, 0);
  std::vector<double> lp;
  double num = 0, den = 0;
  while (true) {
    for (size_t c = 0; c < n; ++c) tuple.At(0, c) = idx[c];
    if (RowSatisfies(query, tuple.Row(0))) {
      model->LogProbRows(tuple, &lp);
      const double p = std::exp(lp[0]);
      num += p * g(tuple.Row(0));
      den += p;
    }
    size_t c = 0;
    for (; c < n; ++c) {
      if (static_cast<size_t>(++idx[c]) < domains[c]) break;
      idx[c] = 0;
    }
    if (c == n) break;
  }
  return den > 0 ? num / den : 0.0;
}

TEST(TupleGenerator, AncestralMarginalMatchesModel) {
  const std::vector<size_t> domains = {5, 4, 3};
  MadeModel model(domains, SmallConfig(3));
  TupleGenerator gen(&model, 7);
  IntMatrix tuples;
  gen.DrawUnconditional(40000, &tuples);
  ASSERT_EQ(tuples.rows(), 40000u);

  // Column 0's empirical distribution vs the model's marginal.
  Matrix probs;
  IntMatrix dummy(1, 3);
  model.ConditionalDist(dummy, 0, &probs);
  std::vector<double> freq(domains[0], 0);
  for (size_t r = 0; r < tuples.rows(); ++r) {
    ASSERT_GE(tuples.At(r, 0), 0);
    ASSERT_LT(tuples.At(r, 0), 5);
    freq[static_cast<size_t>(tuples.At(r, 0))] += 1;
  }
  for (size_t v = 0; v < domains[0]; ++v) {
    EXPECT_NEAR(freq[v] / 40000.0, probs.At(0, v), 0.015) << "value " << v;
  }
}

TEST(TupleGenerator, RejectionConvergesToEnumeration) {
  const std::vector<size_t> domains = {4, 5, 3};
  MadeModel model(domains, SmallConfig(5));
  // Regions built directly over the model's domains: col0 <= 1, col2 >= 1.
  Query q({ValueSet::Interval(4, 0, 1), ValueSet::All(5),
           ValueSet::Interval(3, 1, 2)});
  const double exact = EnumerateSelectivity(&model, q);
  const double rejected = RejectionSelectivity(&model, q, 60000, 9);
  ASSERT_GT(exact, 0.01);  // untrained model: sizeable region mass
  EXPECT_NEAR(rejected / exact, 1.0, 0.1);
}

TEST(TupleGenerator, WeightedDrawsSatisfyQueryAndAverageToMass) {
  const std::vector<size_t> domains = {4, 6, 5};
  MadeModel model(domains, SmallConfig(11));
  // col1 >= 2, col2 <= 2 over the model's own domains.
  Query q({ValueSet::All(4), ValueSet::Interval(6, 2, 5),
           ValueSet::Interval(5, 0, 2)});

  TupleGenerator gen(&model, 17);
  IntMatrix tuples;
  std::vector<double> weights;
  gen.DrawWeighted(q, 30000, &tuples, &weights);

  double mean_w = 0;
  size_t live = 0;
  for (size_t r = 0; r < tuples.rows(); ++r) {
    if (weights[r] > 0) {
      EXPECT_TRUE(RowSatisfies(q, tuples.Row(r))) << "row " << r;
      ++live;
    }
    mean_w += weights[r];
  }
  mean_w /= static_cast<double>(tuples.rows());
  EXPECT_GT(live, 29000u);  // zero-mass paths are rare on a smooth model

  const double exact = EnumerateSelectivity(&model, q);
  EXPECT_NEAR(mean_w / exact, 1.0, 0.05);
}

TEST(TupleGenerator, EmptyRegionYieldsZeroWeights) {
  const std::vector<size_t> domains = {4, 3};
  MadeModel model(domains, SmallConfig(19));
  std::vector<ValueSet> regions = {ValueSet::Empty(4), ValueSet::All(3)};
  Query q(std::move(regions));
  TupleGenerator gen(&model, 23);
  IntMatrix tuples;
  std::vector<double> weights;
  gen.DrawWeighted(q, 100, &tuples, &weights);
  for (double w : weights) EXPECT_EQ(w, 0.0);
}

TEST(IndependenceMh, ChainStatesStayInRegionAndAcceptOften) {
  const std::vector<size_t> domains = {5, 4, 6};
  MadeModel model(domains, SmallConfig(29));
  // col0 >= 1, col2 <= 3.
  Query q({ValueSet::Interval(5, 1, 4), ValueSet::All(4),
           ValueSet::Interval(6, 0, 3)});

  IndependenceMhChain chain(&model, q, 37);
  chain.Advance(500);  // burn-in
  IntMatrix states;
  chain.Sample(2000, /*thin=*/2, &states);
  for (size_t r = 0; r < states.rows(); ++r) {
    EXPECT_TRUE(RowSatisfies(q, states.Row(r)));
  }
  // An untrained (near-smooth) model gives balanced weights; independence
  // MH should accept most proposals.
  EXPECT_GT(chain.acceptance_rate(), 0.5);
}

TEST(IndependenceMh, MarginalMatchesExactConditional) {
  // Compare the chain's empirical marginal of one column against the
  // exactly-enumerated conditional P̂(X_c = v | X ∈ R).
  const std::vector<size_t> domains = {4, 5, 3};
  MadeModel model(domains, SmallConfig(41));
  Query q({ValueSet::All(4), ValueSet::Interval(5, 0, 2), ValueSet::All(3)});

  // Exact conditional marginal of column 0 over the region.
  std::vector<double> exact(domains[0], 0.0);
  for (size_t v = 0; v < domains[0]; ++v) {
    exact[v] = ExactConditionalExpectation(
        &model, q,
        [&](const int32_t* row) { return row[0] == static_cast<int32_t>(v); });
  }

  IndependenceMhChain chain(&model, q, 47);
  chain.Advance(1000);
  IntMatrix states;
  chain.Sample(30000, /*thin=*/1, &states);
  std::vector<double> freq(domains[0], 0.0);
  for (size_t r = 0; r < states.rows(); ++r) {
    freq[static_cast<size_t>(states.At(r, 0))] += 1;
  }
  for (size_t v = 0; v < domains[0]; ++v) {
    EXPECT_NEAR(freq[v] / 30000.0, exact[v], 0.02) << "value " << v;
  }
}

TEST(ConditionalExpectation, MatchesExactOnSmallJoint) {
  const std::vector<size_t> domains = {4, 5, 3};
  MadeModel model(domains, SmallConfig(53));
  Query q({ValueSet::Interval(4, 1, 3), ValueSet::All(5), ValueSet::All(3)});

  auto g = [](const int32_t* row) { return static_cast<double>(row[1]); };
  const double exact = ExactConditionalExpectation(&model, q, g);
  const double est = ConditionalExpectation(&model, q, g, 40000, 61);
  EXPECT_NEAR(est / exact, 1.0, 0.05);
}

TEST(Generators, WorkOverBayesNetModels) {
  // The generator stack is model-agnostic: run it over the Chow-Liu tree.
  Table t = MakeRandomTable(1500, {5, 6, 4}, 67, /*skew=*/1.0);
  BayesNet net(t);
  Query q(t, {{1, CompareOp::kGe, 2}});

  const double exact = net.ExactSelectivity(q);
  const double rejected = RejectionSelectivity(&net, q, 40000, 71);
  EXPECT_NEAR(rejected / exact, 1.0, 0.1);

  IndependenceMhChain chain(&net, q, 73);
  chain.Advance(200);
  IntMatrix states;
  chain.Sample(500, 2, &states);
  for (size_t r = 0; r < states.rows(); ++r) {
    EXPECT_TRUE(RowSatisfies(q, states.Row(r)));
  }
}

}  // namespace
}  // namespace naru
