// Tests for the sampling-plan layer (src/plan): plan compilation (prefix
// tries with multi-depth forking, constrained-prefix sharing, width
// capping, the flat PR 3 mode) and plan execution (shared segment walks,
// forked suffix walks, stacked GEMMs). The oracle throughout is
// bit-identity with the sequential ProgressiveSampler for a fixed seed —
// across shard sizes, tree shapes, kernels, and thread counts.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "core/made.h"
#include "core/oracle_model.h"
#include "core/trainer.h"
#include "core/transformer.h"
#include "data/datasets.h"
#include "plan/plan_executor.h"
#include "plan/sampling_plan.h"
#include "query/workload.h"
#include "tensor/kernel.h"

namespace naru {
namespace {

Table PlanTable(uint64_t seed) {
  return MakeRandomTable(700, {6, 5, 8, 4, 7, 5}, seed, /*skew=*/1.0);
}

std::unique_ptr<MadeModel> PlanModel(const Table& table, uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = seed;
  auto model = std::make_unique<MadeModel>(
      std::vector<size_t>{6, 5, 8, 4, 7, 5}, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 128;
  Trainer(model.get(), tcfg).Train(table);
  return model;
}

/// A query constraining exactly the given columns (interval [1, 2]).
Query QueryOn(const Table& table, const std::vector<size_t>& cols) {
  std::vector<ValueSet> regions;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    regions.push_back(ValueSet::All(table.column(c).DomainSize()));
  }
  for (size_t c : cols) {
    regions[c] = ValueSet::Interval(table.column(c).DomainSize(), 1, 2);
  }
  return Query(regions);
}

/// Mixed-leading-wildcard batch: a randomized workload where roughly half
/// the queries keep a leading run of `wildcards` unconstrained columns.
std::vector<Query> MixedRunBatch(const Table& table, size_t num,
                                 size_t wildcards, uint64_t seed) {
  WorkloadConfig wcfg;
  wcfg.num_queries = num;
  wcfg.min_filters = 1;
  wcfg.max_filters = 4;
  wcfg.leading_wildcards = wildcards;
  wcfg.leading_wildcard_fraction = 0.5;
  wcfg.seed = seed;
  std::vector<Query> out;
  // Keep only sampled-path queries (>= 2 constrained columns or a
  // constrained non-leading column): the plan layer only ever sees those.
  for (Query& q : GenerateWorkload(table, wcfg)) {
    if (q.LastFilteredColumn() >= 1 && !q.HasEmptyRegion()) {
      out.push_back(std::move(q));
    }
  }
  return out;
}

TEST(Query, WildcardMaskAndLeadingRun) {
  Table t = PlanTable(3);
  const Query q = QueryOn(t, {2, 4});
  const auto& mask = q.wildcard_mask();
  ASSERT_EQ(mask.size(), t.num_columns());
  for (size_t c = 0; c < mask.size(); ++c) {
    EXPECT_EQ(mask[c] != 0, c != 2 && c != 4) << "col " << c;
  }
  EXPECT_EQ(q.LeadingWildcardRun(), 2u);
  EXPECT_EQ(q.LastFilteredColumn(), 4);
  EXPECT_EQ(q.NumFilteredColumns(), 2u);
  EXPECT_EQ(QueryOn(t, {0}).LeadingWildcardRun(), 0u);
  EXPECT_EQ(Query(std::vector<ValueSet>{ValueSet::All(4), ValueSet::All(3)})
                .LeadingWildcardRun(),
            2u);
}

TEST(SamplingPlan, FlatModeGroupsByLeadingWildcardRun) {
  Table t = PlanTable(5);
  auto model = PlanModel(t, 5);
  // Runs: 3, 3, 0, 2, 2 — the PR 3 savings-maximizing partition merges all
  // four wildcard-led queries into ONE group at prefix 2 (savings 2·3 = 6,
  // beating {3,3}+{2,2} = 5) and isolates the run-0 query. In kFlat mode
  // each group is a depth-1 tree: a [0, prefix) root plus one leaf per
  // member.
  const std::vector<Query> queries = {
      QueryOn(t, {3, 4}), QueryOn(t, {3, 5}), QueryOn(t, {0, 2}),
      QueryOn(t, {2, 3}), QueryOn(t, {2, 5})};
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  SamplingPlanOptions opts;
  opts.mode = PlanMode::kFlat;
  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs, opts);
  ASSERT_EQ(plan.queries.size(), 5u);
  EXPECT_EQ(plan.queries[0].wildcard_run, 3u);
  EXPECT_EQ(plan.queries[2].wildcard_run, 0u);
  EXPECT_EQ(plan.queries[3].wildcard_run, 2u);
  EXPECT_EQ(plan.queries[0].last_col, 4);

  ASSERT_EQ(plan.trees.size(), 2u);
  EXPECT_EQ(plan.SharedColumns(), 6u);  // prefix 2 shared by 4 queries
  EXPECT_EQ(plan.FlatSharedColumns(), 6u);  // flat mode IS the flat bound
  size_t grouped = 0;
  for (const auto& tree : plan.trees) {
    grouped += tree.members.size();
    EXPECT_LE(tree.fork_depth, 1u);  // flat trees fork at most once
    if (tree.members.size() > 1) {
      // The shared root never exceeds any member's wildcard run.
      const PlanTreeNode& root = tree.nodes[0];
      for (size_t m : tree.members) {
        EXPECT_LE(root.end, plan.queries[m].wildcard_run);
      }
      EXPECT_EQ(root.end, 2u);
      EXPECT_EQ(tree.max_fanout, tree.members.size());
    }
  }
  EXPECT_EQ(grouped, 5u);
  EXPECT_GT(plan.PrefixShareRatio(), 0.0);
}

// Hand-checked trie construction: multi-depth forking plus constrained-
// prefix sharing. Queries (constrained columns, Interval [1,2] each):
//   q0 {3,4}  q1 {3,5}  q2 {0,2}  q3 {2,3}  q4 {2,5}
// Descriptor walk: q2 constrains column 0, everyone else is wildcard
// there, so the root is a pure fork ([0,0)). q0/q1/q3/q4 share [0,2)
// (all wildcard); at column 2 the pair q3/q4 carries an IDENTICAL
// constrained region (shared constrained prefix) while q0/q1 are
// wildcard. q0/q1 then share [2,4) — column 3 constrained the same way —
// and fork at column 4. Savings, per shard:
//   [0,2)·(4-1) = 6,  [2,4)·(2-1) = 2,  q3/q4 [2,3)·(2-1) = 1   → 9
// versus the flat single-level bound of 6 (one group of four at prefix 2).
TEST(SamplingPlan, TrieSharesMultiDepthAndConstrainedPrefixes) {
  Table t = PlanTable(5);
  auto model = PlanModel(t, 5);
  const std::vector<Query> queries = {
      QueryOn(t, {3, 4}), QueryOn(t, {3, 5}), QueryOn(t, {0, 2}),
      QueryOn(t, {2, 3}), QueryOn(t, {2, 5})};
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs);
  ASSERT_EQ(plan.trees.size(), 1u);  // everything under the default cap
  const PlanTree& tree = plan.trees[0];
  EXPECT_EQ(tree.members.size(), 5u);
  EXPECT_EQ(plan.WalkColumns(), 24u);    // 5 + 6 + 3 + 4 + 6
  EXPECT_EQ(plan.SharedColumns(), 9u);   // hand-checked above
  EXPECT_EQ(plan.FlatSharedColumns(), 6u);
  EXPECT_EQ(plan.MaxForkDepth(), 3u);  // root -> [0,2) -> [2,4) -> leaves
  EXPECT_EQ(plan.MaxFanout(), 2u);

  // Structural invariants: children partition their parent's survivors,
  // terminals finish exactly at their node's end.
  std::set<size_t> seen;
  for (const PlanTreeNode& node : tree.nodes) {
    EXPECT_LE(node.begin, node.end);
    for (size_t m : node.terminals) {
      EXPECT_EQ(static_cast<size_t>(plan.queries[m].last_col) + 1, node.end);
      EXPECT_TRUE(seen.insert(m).second);  // each query finishes once
    }
    for (size_t c : node.children) {
      EXPECT_EQ(tree.nodes[c].begin, node.end);
    }
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(SamplingPlan, GroupWidthCapSplitsFlatGroupsEvenly) {
  Table t = PlanTable(7);
  auto model = PlanModel(t, 7);
  std::vector<Query> queries;
  for (size_t i = 0; i < 10; ++i) queries.push_back(QueryOn(t, {2, 3 + i % 3}));
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  SamplingPlanOptions opts;
  opts.mode = PlanMode::kFlat;
  opts.max_group_width = 4;
  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs, opts);
  size_t grouped = 0;
  for (const auto& tree : plan.trees) {
    EXPECT_LE(tree.members.size(), 4u);
    ASSERT_GE(tree.nodes.size(), 1u);
    EXPECT_EQ(tree.nodes[0].end, 2u);  // every piece keeps the shared prefix
    grouped += tree.members.size();
  }
  EXPECT_EQ(grouped, 10u);
  EXPECT_EQ(plan.trees.size(), 3u);  // 10 into pieces of <= 4
}

TEST(SamplingPlan, TreeModeWidthCapSplitsAtForkPoints) {
  Table t = PlanTable(7);
  auto model = PlanModel(t, 7);
  // 10 queries, all sharing the constrained column 2; sub-shapes {2,3},
  // {2,4}, {2,5} repeat, so the trie below the shared segment has three
  // natural fork groups of sizes 4 / 3 / 3.
  std::vector<Query> queries;
  for (size_t i = 0; i < 10; ++i) queries.push_back(QueryOn(t, {2, 3 + i % 3}));
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  SamplingPlanOptions opts;
  opts.max_group_width = 4;
  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs, opts);
  size_t grouped = 0;
  for (const auto& tree : plan.trees) {
    EXPECT_LE(tree.members.size(), 4u);
    grouped += tree.members.size();
    // Identical queries collapse into shared terminals, so even the split
    // trees keep whole-walk sharing: every multi-member tree here fuses
    // identical queries over their full walk.
    if (tree.members.size() > 1) {
      EXPECT_GT(plan.SharedColumns(), 0u);
    }
  }
  EXPECT_EQ(grouped, 10u);
  EXPECT_EQ(plan.trees.size(), 3u);  // the natural 4/3/3 fork groups
}

TEST(SamplingPlan, AutoGroupWidthScalesWithKernelAndModelWidth) {
  // Fixed points of the heuristic, locked so serving behavior is explicit:
  // unknown width falls back to the PR 3 cap; SIMD kernels stack more rows
  // than scalar; wider models stack fewer; everything lands in [4, 64].
  EXPECT_EQ(AutoGroupWidth(0, KernelKind::kSimd, 128), 32u);
  EXPECT_GT(AutoGroupWidth(128, KernelKind::kSimd, 128),
            AutoGroupWidth(128, KernelKind::kScalar, 128));
  EXPECT_GE(AutoGroupWidth(64, KernelKind::kSimdInt8, 128),
            AutoGroupWidth(64, KernelKind::kSimd, 128));
  EXPECT_LE(AutoGroupWidth(1024, KernelKind::kSimd, 128),
            AutoGroupWidth(128, KernelKind::kSimd, 128));
  for (const KernelKind k :
       {KernelKind::kScalar, KernelKind::kSimd, KernelKind::kSimdInt8}) {
    for (const size_t hint : {size_t{0}, size_t{24}, size_t{256},
                              size_t{4096}}) {
      const size_t w = AutoGroupWidth(hint, k, 128);
      EXPECT_GE(w, 4u) << "hint " << hint;
      EXPECT_LE(w, 64u) << "hint " << hint;
    }
  }
}

TEST(SamplingPlan, MixedBudgetsNeverFuse) {
  Table t = PlanTable(19);
  auto model = PlanModel(t, 19);
  // Six queries that would all share a wildcard prefix — but three carry a
  // different per-request sample budget, so the compiler must partition
  // them into budget classes before any tree is built.
  std::vector<Query> queries;
  for (size_t i = 0; i < 6; ++i) queries.push_back(QueryOn(t, {2, 3 + i % 2}));
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  SamplingPlanOptions opts;
  opts.budgets = {100, 400, 100, 400, 100, 400};
  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs, opts);
  size_t members = 0;
  for (const PlanTree& tree : plan.trees) {
    ASSERT_FALSE(tree.members.empty());
    // Every member of a tree shares the tree's budget.
    for (size_t m : tree.members) {
      EXPECT_EQ(plan.queries[m].num_samples, tree.num_samples);
    }
    EXPECT_TRUE(tree.num_samples == 100 || tree.num_samples == 400);
    members += tree.members.size();
  }
  EXPECT_EQ(members, 6u);
  // Both budget classes share within themselves (3 queries each, common
  // prefix) but the plan never fuses across classes.
  EXPECT_GT(plan.SharedColumns(), 0u);
}

TEST(MadeModel, StackedRowsEvaluateBitIdentically) {
  Table t = PlanTable(9);
  auto model = PlanModel(t, 9);
  ASSERT_TRUE(model->SupportsStackedEvaluation());
  const size_t n = model->num_columns();

  // Two unrelated walk states...
  IntMatrix a(3, n), b(5, n);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < n; ++c) {
      a.At(r, c) = static_cast<int32_t>((r + c) % model->DomainSize(c));
    }
  }
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < n; ++c) {
      b.At(r, c) = static_cast<int32_t>((2 * r + c) % model->DomainSize(c));
    }
  }
  // ...stacked into one matrix.
  IntMatrix stacked(8, n);
  for (size_t r = 0; r < 3; ++r) {
    std::memcpy(stacked.Row(r), a.Row(r), n * sizeof(int32_t));
  }
  for (size_t r = 0; r < 5; ++r) {
    std::memcpy(stacked.Row(3 + r), b.Row(r), n * sizeof(int32_t));
  }

  for (size_t col : {size_t{1}, size_t{3}, n - 1}) {
    MadeModel::EvalContext ctx_a, ctx_b, ctx_s;
    Matrix pa, pb, ps;
    model->ConditionalDistWith(&ctx_a, a, col, &pa);
    model->ConditionalDistWith(&ctx_b, b, col, &pb);
    model->StackedConditionalDist(&ctx_s, stacked, col, &ps);
    ASSERT_EQ(ps.rows(), 8u);
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(std::memcmp(ps.Row(r), pa.Row(r),
                            ps.cols() * sizeof(float)),
                0)
          << "col " << col << " row " << r;
    }
    for (size_t r = 0; r < 5; ++r) {
      EXPECT_EQ(std::memcmp(ps.Row(3 + r), pb.Row(r),
                            ps.cols() * sizeof(float)),
                0)
          << "col " << col << " row " << r;
    }
  }
}

// The heart of the refactor: for randomized batches with mixed
// leading-wildcard runs AND shared constrained prefixes, planned execution
// is bit-identical to the sequential per-query sampler — across shard
// sizes, plan modes, tree shapes (the width cap changes fork depths and
// fanouts), and thread counts (estimates AND standard errors).
TEST(PlanExecutor, BitIdenticalToSequentialSampler) {
  Table t = PlanTable(11);
  auto model = PlanModel(t, 11);
  std::vector<Query> queries = MixedRunBatch(t, 24, 3, 131);
  // Shared-constrained-prefix pairs: identical leading equality literals,
  // diverging suffixes (the sharing flat plans cannot express).
  queries.push_back(QueryOn(t, {0, 1, 3}));
  queries.push_back(QueryOn(t, {0, 1, 4}));
  queries.push_back(QueryOn(t, {0, 1, 5}));
  ASSERT_GE(queries.size(), 8u);
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  for (const size_t shard_size : {size_t{32}, size_t{128}}) {
    // Sequential reference at this shard size.
    ProgressiveSamplerConfig scfg;
    scfg.num_samples = 300;
    scfg.shard_size = shard_size;
    scfg.seed = 17;
    ProgressiveSampler sampler(model.get(), scfg);
    std::vector<double> want, want_se;
    for (const auto& q : queries) {
      double se = 0;
      want.push_back(sampler.EstimateWithStdError(q, &se));
      want_se.push_back(se);
    }

    for (const PlanMode mode : {PlanMode::kTree, PlanMode::kFlat}) {
      for (const size_t group_width : {size_t{1}, size_t{3}, size_t{32}}) {
        SamplingPlanOptions popts;
        popts.mode = mode;
        popts.max_group_width = group_width;
        const SamplingPlan plan =
            CompileSamplingPlan(model.get(), ptrs, popts);
        for (const size_t parallelism : {size_t{1}, size_t{0}}) {
          PlanExecutionOptions opts;
          opts.num_samples = 300;
          opts.shard_size = shard_size;
          opts.seed = 17;
          opts.parallelism = parallelism;
          std::vector<double> got, got_se;
          ExecuteSamplingPlan(model.get(), plan, opts, &got, &got_se);
          ASSERT_EQ(got.size(), queries.size());
          for (size_t i = 0; i < queries.size(); ++i) {
            EXPECT_EQ(got[i], want[i])
                << "mode " << (mode == PlanMode::kTree ? "tree" : "flat")
                << " shard " << shard_size << " width " << group_width
                << " parallelism " << parallelism << " query " << i;
            EXPECT_EQ(got_se[i], want_se[i]) << "stderr, query " << i;
          }
        }
      }
    }
  }
}

// Same oracle across the inference kernels: each kernel changes the
// numbers, but within a kernel the tree walk must match the sequential
// walk bit for bit.
TEST(PlanExecutor, BitIdenticalToSequentialAcrossKernels) {
  Table t = PlanTable(23);
  auto model = PlanModel(t, 23);
  std::vector<Query> queries = MixedRunBatch(t, 12, 2, 137);
  queries.push_back(QueryOn(t, {0, 1, 3}));
  queries.push_back(QueryOn(t, {0, 1, 5}));
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  for (const KernelKind kernel :
       {KernelKind::kScalar, KernelKind::kSimd, KernelKind::kSimdInt8}) {
    model->SetInferenceKernel(kernel);

    ProgressiveSamplerConfig scfg;
    scfg.num_samples = 200;
    scfg.shard_size = 64;
    scfg.seed = 29;
    ProgressiveSampler sampler(model.get(), scfg);
    std::vector<double> want;
    for (const auto& q : queries) {
      want.push_back(sampler.EstimateSelectivity(q));
    }

    const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs);
    for (const size_t parallelism : {size_t{1}, size_t{0}}) {
      PlanExecutionOptions opts;
      opts.num_samples = 200;
      opts.shard_size = 64;
      opts.seed = 29;
      opts.parallelism = parallelism;
      std::vector<double> got;
      ExecuteSamplingPlan(model.get(), plan, opts, &got);
      EXPECT_EQ(got, want) << "kernel " << KernelKindName(kernel)
                           << " parallelism " << parallelism;
    }
  }
  model->SetInferenceKernel(KernelKind::kScalar);
}

// The transformer no longer falls back to per-query forwards: it supports
// stacked evaluation, and tree execution over its sessions is bit-
// identical to its sequential walk.
TEST(PlanExecutor, TransformerPlannedBitIdenticalToSequential) {
  Table t = MakeRandomTable(400, {6, 5, 8, 4}, 31, /*skew=*/1.0);
  TransformerModel::Config tcfg;
  tcfg.d_model = 16;
  tcfg.num_heads = 2;
  tcfg.num_layers = 1;
  tcfg.ffn_hidden = 32;
  tcfg.seed = 31;
  auto model = std::make_unique<TransformerModel>(
      std::vector<size_t>{6, 5, 8, 4}, tcfg);
  TrainerConfig trcfg;
  trcfg.epochs = 1;
  trcfg.batch_size = 128;
  Trainer(model.get(), trcfg).Train(t);
  ASSERT_TRUE(model->SupportsStackedEvaluation());
  ASSERT_GT(model->StackedWidthHint(), 0u);

  std::vector<Query> queries = {QueryOn(t, {2, 3}), QueryOn(t, {2}),
                                QueryOn(t, {0, 1, 2}), QueryOn(t, {0, 1, 3}),
                                QueryOn(t, {1, 3})};
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 128;
  scfg.shard_size = 64;
  scfg.seed = 41;
  ProgressiveSampler sampler(model.get(), scfg);
  std::vector<double> want, want_se;
  for (const auto& q : queries) {
    double se = 0;
    want.push_back(sampler.EstimateWithStdError(q, &se));
    want_se.push_back(se);
  }

  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs);
  EXPECT_GT(plan.SharedColumns(), 0u);
  for (const size_t parallelism : {size_t{1}, size_t{0}}) {
    PlanExecutionOptions opts;
    opts.num_samples = 128;
    opts.shard_size = 64;
    opts.seed = 41;
    opts.parallelism = parallelism;
    std::vector<double> got, got_se;
    ExecuteSamplingPlan(model.get(), plan, opts, &got, &got_se);
    ASSERT_EQ(got.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "parallelism " << parallelism
                                 << " query " << i;
      EXPECT_EQ(got_se[i], want_se[i]) << "stderr, query " << i;
    }
  }
}

TEST(PlanExecutor, PrefixShareSavesModelColumnCalls) {
  // Two queries sharing a 2-column wildcard prefix, via a call-counting
  // model: the planned walk must evaluate the prefix columns once per
  // shard, not once per (query, shard).
  class CountingModel : public ConditionalModel {
   public:
    size_t num_columns() const override { return 4; }
    size_t DomainSize(size_t) const override { return 3; }
    void ConditionalDist(const IntMatrix& samples, size_t col,
                         Matrix* probs) override {
      ++calls;
      probs->Resize(samples.rows(), 3);
      probs->Fill(1.0f / 3.0f);
      (void)col;
    }
    bool SupportsStackedEvaluation() const override { return true; }
    int calls = 0;
  };
  CountingModel model;
  Query qa({ValueSet::All(3), ValueSet::All(3), ValueSet::Interval(3, 0, 1),
            ValueSet::All(3)});
  Query qb({ValueSet::All(3), ValueSet::All(3), ValueSet::All(3),
            ValueSet::Interval(3, 1, 2)});
  const SamplingPlan plan =
      CompileSamplingPlan(&model, {&qa, &qb});
  ASSERT_EQ(plan.trees.size(), 1u);
  // Shared root walks the 2-column wildcard prefix once for both members.
  EXPECT_EQ(plan.trees[0].nodes[0].begin, 0u);
  EXPECT_EQ(plan.trees[0].nodes[0].end, 2u);
  EXPECT_EQ(plan.SharedColumns(), 2u);

  PlanExecutionOptions opts;
  opts.num_samples = 64;
  opts.shard_size = 64;  // one shard
  std::vector<double> got;
  ExecuteSamplingPlan(&model, plan, opts, &got);
  // Sequential would walk qa over cols 0..2 and qb over 0..3 = 7 calls;
  // the plan shares cols 0-1 and stacks the rest: 2 (prefix) + 1 (col 2,
  // stacked) + 1 (col 3, qb alone) = 4.
  EXPECT_EQ(model.calls, 4);
  // float32 conditionals: 1/3f + 1/3f carries ~1e-8 rounding.
  EXPECT_NEAR(got[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(got[1], 2.0 / 3.0, 1e-6);
}

TEST(PlanExecutor, RefusesStatefulSessionModels) {
  Table t = PlanTable(13);
  OracleModel oracle(&t);
  EXPECT_FALSE(oracle.SupportsStackedEvaluation());
}

}  // namespace
}  // namespace naru
