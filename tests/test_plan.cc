// Tests for the sampling-plan layer (src/plan): plan compilation
// (grouping, prefix lengths, the savings-maximizing partition) and plan
// execution (shared prefix walks, forked suffix walks, stacked GEMMs).
// The oracle throughout is bit-identity with the sequential
// ProgressiveSampler for a fixed seed — across shard sizes, group
// layouts, and thread counts.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/made.h"
#include "core/oracle_model.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "plan/plan_executor.h"
#include "plan/sampling_plan.h"
#include "query/workload.h"

namespace naru {
namespace {

Table PlanTable(uint64_t seed) {
  return MakeRandomTable(700, {6, 5, 8, 4, 7, 5}, seed, /*skew=*/1.0);
}

std::unique_ptr<MadeModel> PlanModel(const Table& table, uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = seed;
  auto model = std::make_unique<MadeModel>(
      std::vector<size_t>{6, 5, 8, 4, 7, 5}, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 128;
  Trainer(model.get(), tcfg).Train(table);
  return model;
}

/// A query constraining exactly the given columns (interval [1, 2]).
Query QueryOn(const Table& table, const std::vector<size_t>& cols) {
  std::vector<ValueSet> regions;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    regions.push_back(ValueSet::All(table.column(c).DomainSize()));
  }
  for (size_t c : cols) {
    regions[c] = ValueSet::Interval(table.column(c).DomainSize(), 1, 2);
  }
  return Query(regions);
}

/// Mixed-leading-wildcard batch: a randomized workload where roughly half
/// the queries keep a leading run of `wildcards` unconstrained columns.
std::vector<Query> MixedRunBatch(const Table& table, size_t num,
                                 size_t wildcards, uint64_t seed) {
  WorkloadConfig wcfg;
  wcfg.num_queries = num;
  wcfg.min_filters = 1;
  wcfg.max_filters = 4;
  wcfg.leading_wildcards = wildcards;
  wcfg.leading_wildcard_fraction = 0.5;
  wcfg.seed = seed;
  std::vector<Query> out;
  // Keep only sampled-path queries (>= 2 constrained columns or a
  // constrained non-leading column): the plan layer only ever sees those.
  for (Query& q : GenerateWorkload(table, wcfg)) {
    if (q.LastFilteredColumn() >= 1 && !q.HasEmptyRegion()) {
      out.push_back(std::move(q));
    }
  }
  return out;
}

TEST(Query, WildcardMaskAndLeadingRun) {
  Table t = PlanTable(3);
  const Query q = QueryOn(t, {2, 4});
  const auto& mask = q.wildcard_mask();
  ASSERT_EQ(mask.size(), t.num_columns());
  for (size_t c = 0; c < mask.size(); ++c) {
    EXPECT_EQ(mask[c] != 0, c != 2 && c != 4) << "col " << c;
  }
  EXPECT_EQ(q.LeadingWildcardRun(), 2u);
  EXPECT_EQ(q.LastFilteredColumn(), 4);
  EXPECT_EQ(q.NumFilteredColumns(), 2u);
  EXPECT_EQ(QueryOn(t, {0}).LeadingWildcardRun(), 0u);
  EXPECT_EQ(Query(std::vector<ValueSet>{ValueSet::All(4), ValueSet::All(3)})
                .LeadingWildcardRun(),
            2u);
}

TEST(SamplingPlan, GroupsByLeadingWildcardRun) {
  Table t = PlanTable(5);
  auto model = PlanModel(t, 5);
  // Runs: 3, 3, 0, 2, 2 — the optimal partition merges all four
  // wildcard-led queries into ONE group at prefix 2 (savings 2·3 = 6,
  // beating {3,3}+{2,2} = 5) and isolates the run-0 query.
  const std::vector<Query> queries = {
      QueryOn(t, {3, 4}), QueryOn(t, {3, 5}), QueryOn(t, {0, 2}),
      QueryOn(t, {2, 3}), QueryOn(t, {2, 5})};
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs);
  ASSERT_EQ(plan.queries.size(), 5u);
  EXPECT_EQ(plan.queries[0].wildcard_run, 3u);
  EXPECT_EQ(plan.queries[2].wildcard_run, 0u);
  EXPECT_EQ(plan.queries[3].wildcard_run, 2u);
  EXPECT_EQ(plan.queries[0].last_col, 4);

  ASSERT_EQ(plan.groups.size(), 2u);
  EXPECT_EQ(plan.SharedPrefixColumns(), 6u);  // prefix 2 shared by 4 queries
  size_t grouped = 0;
  for (const auto& g : plan.groups) {
    grouped += g.members.size();
    // Members ordered by last_col descending (truncation invariant).
    for (size_t i = 1; i < g.members.size(); ++i) {
      EXPECT_GE(plan.queries[g.members[i - 1]].last_col,
                plan.queries[g.members[i]].last_col);
    }
    // The shared prefix never exceeds any member's run.
    for (size_t m : g.members) {
      EXPECT_LE(g.prefix_len, plan.queries[m].wildcard_run);
    }
  }
  EXPECT_EQ(grouped, 5u);
  EXPECT_GT(plan.PrefixShareRatio(), 0.0);
}

TEST(SamplingPlan, GroupWidthCapSplitsEvenly) {
  Table t = PlanTable(7);
  auto model = PlanModel(t, 7);
  std::vector<Query> queries;
  for (size_t i = 0; i < 10; ++i) queries.push_back(QueryOn(t, {2, 3 + i % 3}));
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  SamplingPlanOptions opts;
  opts.max_group_width = 4;
  const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs, opts);
  size_t grouped = 0;
  for (const auto& g : plan.groups) {
    EXPECT_LE(g.members.size(), 4u);
    EXPECT_EQ(g.prefix_len, 2u);  // every piece keeps the shared prefix
    grouped += g.members.size();
  }
  EXPECT_EQ(grouped, 10u);
  EXPECT_EQ(plan.groups.size(), 3u);  // 10 into pieces of <= 4
}

TEST(MadeModel, StackedRowsEvaluateBitIdentically) {
  Table t = PlanTable(9);
  auto model = PlanModel(t, 9);
  ASSERT_TRUE(model->SupportsStackedEvaluation());
  const size_t n = model->num_columns();

  // Two unrelated walk states...
  IntMatrix a(3, n), b(5, n);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < n; ++c) {
      a.At(r, c) = static_cast<int32_t>((r + c) % model->DomainSize(c));
    }
  }
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < n; ++c) {
      b.At(r, c) = static_cast<int32_t>((2 * r + c) % model->DomainSize(c));
    }
  }
  // ...stacked into one matrix.
  IntMatrix stacked(8, n);
  for (size_t r = 0; r < 3; ++r) {
    std::memcpy(stacked.Row(r), a.Row(r), n * sizeof(int32_t));
  }
  for (size_t r = 0; r < 5; ++r) {
    std::memcpy(stacked.Row(3 + r), b.Row(r), n * sizeof(int32_t));
  }

  for (size_t col : {size_t{1}, size_t{3}, n - 1}) {
    MadeModel::EvalContext ctx_a, ctx_b, ctx_s;
    Matrix pa, pb, ps;
    model->ConditionalDistWith(&ctx_a, a, col, &pa);
    model->ConditionalDistWith(&ctx_b, b, col, &pb);
    model->StackedConditionalDist(&ctx_s, stacked, col, &ps);
    ASSERT_EQ(ps.rows(), 8u);
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(std::memcmp(ps.Row(r), pa.Row(r),
                            ps.cols() * sizeof(float)),
                0)
          << "col " << col << " row " << r;
    }
    for (size_t r = 0; r < 5; ++r) {
      EXPECT_EQ(std::memcmp(ps.Row(3 + r), pb.Row(r),
                            ps.cols() * sizeof(float)),
                0)
          << "col " << col << " row " << r;
    }
  }
}

// The heart of the refactor: for randomized batches with mixed
// leading-wildcard runs, planned execution is bit-identical to the
// sequential per-query sampler — across shard sizes, group layouts, and
// thread counts (estimates AND standard errors).
TEST(PlanExecutor, BitIdenticalToSequentialSampler) {
  Table t = PlanTable(11);
  auto model = PlanModel(t, 11);
  const std::vector<Query> queries = MixedRunBatch(t, 24, 3, 131);
  ASSERT_GE(queries.size(), 8u);
  std::vector<const Query*> ptrs;
  for (const auto& q : queries) ptrs.push_back(&q);

  for (const size_t shard_size : {size_t{32}, size_t{128}}) {
    // Sequential reference at this shard size.
    ProgressiveSamplerConfig scfg;
    scfg.num_samples = 300;
    scfg.shard_size = shard_size;
    scfg.seed = 17;
    ProgressiveSampler sampler(model.get(), scfg);
    std::vector<double> want, want_se;
    for (const auto& q : queries) {
      double se = 0;
      want.push_back(sampler.EstimateWithStdError(q, &se));
      want_se.push_back(se);
    }

    for (const size_t group_width : {size_t{1}, size_t{3}, size_t{32}}) {
      SamplingPlanOptions popts;
      popts.max_group_width = group_width;
      const SamplingPlan plan = CompileSamplingPlan(model.get(), ptrs, popts);
      for (const size_t parallelism : {size_t{1}, size_t{0}}) {
        PlanExecutionOptions opts;
        opts.num_samples = 300;
        opts.shard_size = shard_size;
        opts.seed = 17;
        opts.parallelism = parallelism;
        std::vector<double> got, got_se;
        ExecuteSamplingPlan(model.get(), plan, opts, &got, &got_se);
        ASSERT_EQ(got.size(), queries.size());
        for (size_t i = 0; i < queries.size(); ++i) {
          EXPECT_EQ(got[i], want[i])
              << "shard " << shard_size << " width " << group_width
              << " parallelism " << parallelism << " query " << i;
          EXPECT_EQ(got_se[i], want_se[i]) << "stderr, query " << i;
        }
      }
    }
  }
}

TEST(PlanExecutor, PrefixShareSavesModelColumnCalls) {
  // Two queries sharing a 2-column wildcard prefix, via a call-counting
  // model: the planned walk must evaluate the prefix columns once per
  // shard, not once per (query, shard).
  class CountingModel : public ConditionalModel {
   public:
    size_t num_columns() const override { return 4; }
    size_t DomainSize(size_t) const override { return 3; }
    void ConditionalDist(const IntMatrix& samples, size_t col,
                         Matrix* probs) override {
      ++calls;
      probs->Resize(samples.rows(), 3);
      probs->Fill(1.0f / 3.0f);
      (void)col;
    }
    bool SupportsStackedEvaluation() const override { return true; }
    int calls = 0;
  };
  CountingModel model;
  Query qa({ValueSet::All(3), ValueSet::All(3), ValueSet::Interval(3, 0, 1),
            ValueSet::All(3)});
  Query qb({ValueSet::All(3), ValueSet::All(3), ValueSet::All(3),
            ValueSet::Interval(3, 1, 2)});
  const SamplingPlan plan =
      CompileSamplingPlan(&model, {&qa, &qb});
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].prefix_len, 2u);

  PlanExecutionOptions opts;
  opts.num_samples = 64;
  opts.shard_size = 64;  // one shard
  std::vector<double> got;
  ExecuteSamplingPlan(&model, plan, opts, &got);
  // Sequential would walk qa over cols 0..2 and qb over 0..3 = 7 calls;
  // the plan shares cols 0-1 and stacks the rest: 2 (prefix) + 1 (col 2,
  // stacked) + 1 (col 3, qb alone) = 4.
  EXPECT_EQ(model.calls, 4);
  // float32 conditionals: 1/3f + 1/3f carries ~1e-8 rounding.
  EXPECT_NEAR(got[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(got[1], 2.0 / 3.0, 1e-6);
}

TEST(PlanExecutor, RefusesStatefulSessionModels) {
  Table t = PlanTable(13);
  OracleModel oracle(&t);
  EXPECT_FALSE(oracle.SupportsStackedEvaluation());
}

}  // namespace
}  // namespace naru
