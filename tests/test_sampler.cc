// Tests for progressive sampling (Algorithm 1) and exact enumeration:
// unbiasedness on oracle joints, consistency with enumeration on learned
// models, wildcard handling, the uniform-region strawman.
#include <gtest/gtest.h>

#include <cmath>

#include "core/enumerator.h"
#include "core/made.h"
#include "core/oracle_model.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "query/executor.h"
#include "query/workload.h"

namespace naru {
namespace {

// Property test: on an exact oracle model, progressive sampling with many
// paths must converge to the true selectivity for random queries
// (Theorem 1 unbiasedness + concentration).
class SamplerUnbiasednessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplerUnbiasednessTest, OracleEstimatesMatchTruth) {
  const uint64_t seed = GetParam();
  Table t = MakeRandomTable(800, {5, 7, 9, 4, 6}, seed, /*skew=*/1.1);
  OracleModel oracle(&t);

  WorkloadConfig wcfg;
  wcfg.num_queries = 15;
  wcfg.min_filters = 1;
  wcfg.max_filters = 5;
  wcfg.range_domain_threshold = 5;
  wcfg.seed = seed * 31 + 1;
  const auto queries = GenerateWorkload(t, wcfg);

  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 4000;
  scfg.seed = seed + 5;
  ProgressiveSampler sampler(&oracle, scfg);

  for (const auto& q : queries) {
    const double truth = ExecuteSelectivity(t, q);
    const double est = sampler.EstimateSelectivity(q);
    // Monte Carlo tolerance: absolute for tiny, relative for larger.
    EXPECT_NEAR(est, truth, std::max(0.35 * truth, 0.015))
        << q.ToString(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerUnbiasednessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Sampler, ExactOnEqualityPointQueries) {
  // With every column filtered to a point, progressive sampling needs no
  // randomness: the estimate equals the oracle's exact point probability.
  Table t = MakeRandomTable(400, {3, 4, 5}, 10);
  OracleModel oracle(&t);
  // Build an equality query on an existing tuple.
  std::vector<Predicate> preds;
  for (size_t c = 0; c < 3; ++c) {
    preds.push_back(Predicate{c, CompareOp::kEq, t.column(c).code(0), 0, {}});
  }
  Query q(t, preds);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 16;  // deterministic regardless of path count
  ProgressiveSampler sampler(&oracle, scfg);
  const double truth = ExecuteSelectivity(t, q);
  // float32 conditionals leave ~1e-7 relative noise.
  EXPECT_NEAR(sampler.EstimateSelectivity(q), truth, 1e-6);
}

TEST(Sampler, WildcardOnlyQueryIsOne) {
  Table t = MakeRandomTable(100, {4, 4}, 11);
  OracleModel oracle(&t);
  Query q(t, {});
  ProgressiveSampler sampler(&oracle, ProgressiveSamplerConfig{});
  EXPECT_DOUBLE_EQ(sampler.EstimateSelectivity(q), 1.0);
}

TEST(Sampler, EmptyRegionIsZero) {
  Table t = MakeRandomTable(100, {4, 4}, 12);
  OracleModel oracle(&t);
  Predicate lt0{/*column=*/0, CompareOp::kLt, /*literal=*/0, 0, {}};
  Query q(t, {lt0});
  ASSERT_TRUE(q.HasEmptyRegion());
  ProgressiveSampler sampler(&oracle, ProgressiveSamplerConfig{});
  EXPECT_DOUBLE_EQ(sampler.EstimateSelectivity(q), 0.0);
}

TEST(Sampler, TrailingWildcardsNeedNoModelCalls) {
  // A query filtering only column 0 must end after one column; verify via
  // a model that counts conditional calls.
  class CountingModel : public ConditionalModel {
   public:
    size_t num_columns() const override { return 4; }
    size_t DomainSize(size_t) const override { return 3; }
    void ConditionalDist(const IntMatrix& samples, size_t col,
                         Matrix* probs) override {
      ++calls;
      probs->Resize(samples.rows(), 3);
      probs->Fill(1.0f / 3.0f);
      (void)col;
    }
    int calls = 0;
  };
  CountingModel model;
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 1, 2})
                .AddIntColumn("b", {0, 1, 2})
                .AddIntColumn("c", {0, 1, 2})
                .AddIntColumn("d", {0, 1, 2})
                .Build();
  Predicate p{/*column=*/0, CompareOp::kEq, /*literal=*/1, 0, {}};
  Query q(t, {p});
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 64;
  scfg.shard_size = 64;
  ProgressiveSampler sampler(&model, scfg);
  const double est = sampler.EstimateSelectivity(q);
  EXPECT_NEAR(est, 1.0 / 3.0, 1e-6);
  EXPECT_EQ(model.calls, 1);  // only column 0 was visited
}

TEST(Sampler, UniformRegionModeIsUnbiasedButNoisy) {
  Table t = MakeRandomTable(500, {6, 6}, 13, /*skew=*/0.5);
  OracleModel oracle(&t);
  Predicate p0{/*column=*/0, CompareOp::kLe, /*literal=*/3, 0, {}};
  Predicate p1{/*column=*/1, CompareOp::kGe, /*literal=*/2, 0, {}};
  Query q(t, {p0, p1});
  const double truth = ExecuteSelectivity(t, q);

  ProgressiveSamplerConfig ucfg;
  ucfg.num_samples = 20000;
  ucfg.uniform_region = true;
  ucfg.seed = 3;
  ProgressiveSampler uniform(&oracle, ucfg);
  EXPECT_NEAR(uniform.EstimateSelectivity(q), truth,
              std::max(0.3 * truth, 0.02));
}

TEST(Sampler, StdErrorConfidenceIntervalCoversExactMass) {
  // Repeated estimates with independent seeds: the ±2·stderr interval must
  // cover the exactly-enumerated model mass in the vast majority of runs
  // (nominal ~95%; we assert a lenient 80% over 40 runs).
  const std::vector<size_t> domains = {5, 6, 4};
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = 7;
  MadeModel model(domains, cfg);
  Query q({ValueSet::Interval(5, 1, 3), ValueSet::All(6),
           ValueSet::Interval(4, 0, 1)});
  const double exact = EnumerateSelectivity(&model, q);
  ASSERT_GT(exact, 0.0);

  size_t covered = 0;
  const size_t runs = 40;
  for (size_t i = 0; i < runs; ++i) {
    ProgressiveSamplerConfig scfg;
    scfg.num_samples = 300;
    scfg.seed = 1000 + i;
    ProgressiveSampler sampler(&model, scfg);
    double se = -1;
    const double est = sampler.EstimateWithStdError(q, &se);
    ASSERT_GE(se, 0.0);
    covered += (std::abs(est - exact) <= 2.0 * se + 1e-12);
  }
  EXPECT_GE(covered, runs * 8 / 10) << covered << "/" << runs;
}

TEST(Sampler, StdErrorIsZeroForExactCases) {
  const std::vector<size_t> domains = {5, 6};
  MadeModel::Config cfg;
  cfg.hidden_sizes = {16};
  cfg.seed = 3;
  MadeModel model(domains, cfg);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 64;
  ProgressiveSampler sampler(&model, scfg);

  double se = -1;
  // All-wildcard: exactly 1, no sampling.
  Query all({ValueSet::All(5), ValueSet::All(6)});
  EXPECT_EQ(sampler.EstimateWithStdError(all, &se), 1.0);
  EXPECT_EQ(se, 0.0);
  // Empty region: exactly 0.
  Query none({ValueSet::Empty(5), ValueSet::All(6)});
  EXPECT_EQ(sampler.EstimateWithStdError(none, &se), 0.0);
  EXPECT_EQ(se, 0.0);
  // Single leading filter: every path weight identical -> stderr 0.
  Query lead({ValueSet::Interval(5, 0, 2), ValueSet::All(6)});
  sampler.EstimateWithStdError(lead, &se);
  EXPECT_NEAR(se, 0.0, 1e-9);
}

TEST(Sampler, StdErrorShrinksWithSampleCount) {
  const std::vector<size_t> domains = {6, 5, 4};
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.seed = 11;
  MadeModel model(domains, cfg);
  Query q({ValueSet::Interval(6, 2, 5), ValueSet::Interval(5, 0, 2),
           ValueSet::All(4)});
  auto stderr_at = [&](size_t s, uint64_t seed) {
    ProgressiveSamplerConfig scfg;
    scfg.num_samples = s;
    scfg.seed = seed;
    ProgressiveSampler sampler(&model, scfg);
    double se = 0;
    sampler.EstimateWithStdError(q, &se);
    return se;
  };
  // ~1/sqrt(S): 16x more samples ~ 4x smaller stderr (generous factor 2).
  const double se_small = stderr_at(200, 5);
  const double se_big = stderr_at(3200, 5);
  ASSERT_GT(se_small, 0.0);
  EXPECT_LT(se_big, se_small / 2.0);
}

TEST(Sampler, ColumnStepPrimitiveReproducesFullWalk) {
  // The sampler's per-column row kernel is exposed as SamplerColumnStep so
  // the plan executor (src/plan) can share it. Re-assembling a whole
  // estimate from the primitive — shard seeds, column steps, shard-order
  // reduction — must reproduce EstimateSelectivity bit-for-bit; this
  // pins the primitive's contract independently of either caller.
  Table t = MakeRandomTable(500, {5, 6, 4, 5}, 19, /*skew=*/1.0);
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {24, 24};
  mcfg.encoder.onehot_threshold = 16;
  mcfg.seed = 4;
  MadeModel model({5, 6, 4, 5}, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 128;
  Trainer(&model, tcfg).Train(t);

  Predicate p1{/*column=*/1, CompareOp::kLe, /*literal=*/3, 0, {}};
  Predicate p2{/*column=*/2, CompareOp::kGe, /*literal=*/1, 0, {}};
  Query q(t, {p1, p2});

  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 200;
  scfg.shard_size = 64;
  scfg.seed = 23;
  ProgressiveSampler sampler(&model, scfg);
  const double want = sampler.EstimateSelectivity(q);

  const int last_col = q.LastFilteredColumn();
  const size_t n = model.num_columns();
  double weight_sum = 0;
  for (size_t k = 0; k < SamplerNumShards(scfg.num_samples, scfg.shard_size);
       ++k) {
    const size_t lo = k * scfg.shard_size;
    const size_t rows = std::min(scfg.shard_size, scfg.num_samples - lo);
    Rng rng(SamplerShardSeed(scfg.seed, k));
    IntMatrix samples(rows, n);
    Matrix probs;
    std::vector<double> weights(rows, 1.0);
    std::vector<uint8_t> alive(rows, 1);
    auto session = model.StartSession(rows);
    for (size_t col = 0; col <= static_cast<size_t>(last_col); ++col) {
      session->Dist(samples, col, &probs);
      SamplerColumnStep(&model, q, col, model.PositionIsWildcard(q, col),
                        SamplerRowBlock{&samples, &probs, weights.data(),
                                        alive.data(), 0, rows},
                        &rng);
    }
    for (double w : weights) weight_sum += w;
  }
  EXPECT_EQ(weight_sum / static_cast<double>(scfg.num_samples), want);
}

TEST(Enumerator, MatchesTruthOnOracle) {
  Table t = MakeRandomTable(300, {4, 5, 3}, 15);
  OracleModel oracle(&t);
  WorkloadConfig wcfg;
  wcfg.num_queries = 10;
  wcfg.min_filters = 1;
  wcfg.max_filters = 3;
  wcfg.range_domain_threshold = 4;
  wcfg.seed = 8;
  for (const auto& q : GenerateWorkload(t, wcfg)) {
    const double truth = ExecuteSelectivity(t, q);
    EXPECT_NEAR(EnumerateSelectivity(&oracle, q), truth, 1e-6)
        << q.ToString(t);
  }
}

TEST(Enumerator, MatchesProgressiveSamplingOnTrainedModel) {
  // Both querying schemes target the same model joint; with many samples
  // they must agree (§5: enumeration is exact, sampling unbiased).
  Table t = MakeRandomTable(1000, {5, 6, 4}, 16, /*skew=*/1.0);
  MadeModel::Config mcfg;
  mcfg.hidden_sizes = {32, 32};
  mcfg.encoder.onehot_threshold = 16;
  mcfg.seed = 2;
  MadeModel model({5, 6, 4}, mcfg);
  TrainerConfig tcfg;
  tcfg.epochs = 8;
  tcfg.batch_size = 128;
  Trainer trainer(&model, tcfg);
  trainer.Train(t);

  Predicate p0{/*column=*/0, CompareOp::kLe, /*literal=*/2, 0, {}};
  Predicate p2{/*column=*/2, CompareOp::kGe, /*literal=*/1, 0, {}};
  Query q(t, {p0, p2});

  const double enumerated = EnumerateSelectivity(&model, q);
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 20000;
  scfg.seed = 21;
  ProgressiveSampler sampler(&model, scfg);
  const double sampled = sampler.EstimateSelectivity(q);
  EXPECT_NEAR(sampled, enumerated, std::max(0.1 * enumerated, 0.01));
}

TEST(Enumerator, EstimatedEnumerationCost) {
  Table t = MakeRandomTable(100, {1000, 1000, 1000}, 17);
  Query q(t, {});  // full wildcard: region = whole joint
  // At 1e6 points/sec, a ~1e9-point region costs ~1e3 seconds.
  const double secs = EstimateEnumerationSeconds(q, 1e6);
  const double points = std::pow(10.0, q.Log10RegionSize());
  EXPECT_NEAR(secs, points / 1e6, points * 1e-9);
}

}  // namespace
}  // namespace naru
