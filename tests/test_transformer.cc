// Tests for the causal Transformer autoregressive model and the LayerNorm
// layer it introduced: normalization semantics, masking invariants,
// likelihood normalization, gradient correctness, training convergence, and
// end-to-end progressive-sampling estimation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/entropy.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "core/transformer.h"
#include "data/datasets.h"
#include "data/table_stats.h"
#include "nn/layernorm.h"
#include "query/executor.h"

namespace naru {
namespace {

TransformerModel::Config TinyConfig(uint64_t seed = 1) {
  TransformerModel::Config cfg;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.ffn_hidden = 32;
  cfg.seed = seed;
  return cfg;
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln("t", 8);
  Rng rng(3);
  Matrix x(4, 8);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian() * 3 + 1);
  }
  Matrix y;
  ln.Forward(x, &y);
  for (size_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (size_t c = 0; c < 8; ++c) mean += y.At(r, c);
    mean /= 8;
    for (size_t c = 0; c < 8; ++c) {
      var += (y.At(r, c) - mean) * (y.At(r, c) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, AffineParametersApply) {
  LayerNorm ln("t", 4);
  ln.gamma().value.Fill(2.0f);
  ln.beta().value.Fill(-1.0f);
  Matrix x(1, 4);
  x.At(0, 0) = 0;
  x.At(0, 1) = 1;
  x.At(0, 2) = 2;
  x.At(0, 3) = 3;
  Matrix y;
  ln.Forward(x, &y);
  // xhat of an arithmetic sequence is symmetric around 0; check y = 2x̂ - 1.
  Matrix y_ref;
  LayerNorm plain("p", 4);
  plain.Forward(x, &y_ref);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(y.At(0, c), 2.0f * y_ref.At(0, c) - 1.0f, 1e-5);
  }
}

TEST(LayerNorm, GradientMatchesFiniteDifference) {
  // Scalar loss L = sum(y * w) for a fixed random w; check dgamma, dbeta
  // and dx against central differences.
  const size_t dim = 6, batch = 3;
  LayerNorm ln("t", dim);
  Rng rng(11);
  for (size_t i = 0; i < dim; ++i) {
    ln.gamma().value.data()[i] = static_cast<float>(1 + 0.3 * rng.Gaussian());
    ln.beta().value.data()[i] = static_cast<float>(0.2 * rng.Gaussian());
  }
  Matrix x(batch, dim), w(batch, dim);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian());
    w.data()[i] = static_cast<float>(rng.Gaussian());
  }
  auto loss = [&](const Matrix& input) {
    Matrix y;
    ln.Forward(input, &y);
    double s = 0;
    for (size_t i = 0; i < y.size(); ++i) s += y.data()[i] * w.data()[i];
    return s;
  };
  Matrix dx;
  ln.gamma().ZeroGrad();
  ln.beta().ZeroGrad();
  ln.Backward(x, w, &dx);

  const double eps = 1e-3;
  for (size_t i = 0; i < x.size(); ++i) {
    Matrix xp = x;
    xp.data()[i] += static_cast<float>(eps);
    Matrix xm = x;
    xm.data()[i] -= static_cast<float>(eps);
    const double num = (loss(xp) - loss(xm)) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], num, 2e-2) << "dx[" << i << "]";
  }
  for (size_t i = 0; i < dim; ++i) {
    const float g0 = ln.gamma().value.data()[i];
    ln.gamma().value.data()[i] = g0 + static_cast<float>(eps);
    const double up = loss(x);
    ln.gamma().value.data()[i] = g0 - static_cast<float>(eps);
    const double down = loss(x);
    ln.gamma().value.data()[i] = g0;
    EXPECT_NEAR(ln.gamma().grad.data()[i], (up - down) / (2 * eps), 2e-2);
  }
}

TEST(Transformer, AutoregressivePropertyHolds) {
  // Changing column j must not change conditionals for columns i <= j:
  // the causal mask plus the SOS shift guarantee position i only reads
  // columns < i.
  const std::vector<size_t> domains = {5, 3, 12, 4};
  TransformerModel model(domains, TinyConfig());

  IntMatrix base(1, 4);
  base.At(0, 0) = 2;
  base.At(0, 1) = 1;
  base.At(0, 2) = 7;
  base.At(0, 3) = 3;

  for (size_t j = 0; j < domains.size(); ++j) {
    std::vector<Matrix> before(domains.size());
    for (size_t i = 0; i < domains.size(); ++i) {
      model.ConditionalDist(base, i, &before[i]);
    }
    IntMatrix mutated = base;
    mutated.At(0, j) = (base.At(0, j) + 1) % static_cast<int32_t>(domains[j]);
    for (size_t i = 0; i < domains.size(); ++i) {
      Matrix after;
      model.ConditionalDist(mutated, i, &after);
      if (i <= j) {
        for (size_t v = 0; v < domains[i]; ++v) {
          ASSERT_NEAR(before[i].At(0, v), after.At(0, v), 1e-6)
              << "output " << i << " changed when column " << j
              << " was perturbed";
        }
      }
    }
  }
}

TEST(Transformer, ConditionalsAreNormalized) {
  const std::vector<size_t> domains = {4, 20, 3};
  TransformerModel model(domains, TinyConfig(3));
  IntMatrix batch(5, 3);
  Rng rng(5);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      batch.At(r, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
    }
  }
  for (size_t c = 0; c < 3; ++c) {
    Matrix probs;
    model.ConditionalDist(batch, c, &probs);
    ASSERT_EQ(probs.rows(), 5u);
    ASSERT_EQ(probs.cols(), domains[c]);
    for (size_t r = 0; r < 5; ++r) {
      double sum = 0;
      for (size_t v = 0; v < domains[c]; ++v) {
        EXPECT_GE(probs.At(r, v), 0.0f);
        sum += probs.At(r, v);
      }
      EXPECT_NEAR(sum, 1.0, 1e-4);
    }
  }
}

TEST(Transformer, JointSumsToOneByEnumeration) {
  const std::vector<size_t> domains = {3, 4, 2};
  TransformerModel model(domains, TinyConfig(7));
  double total = 0;
  IntMatrix tuple(1, 3);
  std::vector<double> lp;
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 4; ++b) {
      for (size_t c = 0; c < 2; ++c) {
        tuple.At(0, 0) = static_cast<int32_t>(a);
        tuple.At(0, 1) = static_cast<int32_t>(b);
        tuple.At(0, 2) = static_cast<int32_t>(c);
        model.LogProbRows(tuple, &lp);
        total += std::exp(lp[0]);
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(Transformer, LogProbMatchesConditionalChain) {
  const std::vector<size_t> domains = {4, 9, 5};
  TransformerModel model(domains, TinyConfig(9));
  IntMatrix tuple(1, 3);
  tuple.At(0, 0) = 1;
  tuple.At(0, 1) = 7;
  tuple.At(0, 2) = 0;
  std::vector<double> lp;
  model.LogProbRows(tuple, &lp);
  double chain = 0;
  for (size_t c = 0; c < 3; ++c) {
    Matrix probs;
    model.ConditionalDist(tuple, c, &probs);
    chain += std::log(
        static_cast<double>(probs.At(0, static_cast<size_t>(tuple.At(0, c)))));
  }
  EXPECT_NEAR(lp[0], chain, 1e-4);
}

TEST(Transformer, GradientMatchesFiniteDifference) {
  TransformerModel::Config cfg;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  cfg.ffn_hidden = 12;
  cfg.seed = 11;
  const std::vector<size_t> domains = {3, 6, 4};
  TransformerModel model(domains, cfg);

  IntMatrix batch(3, 3);
  Rng rng(13);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      batch.At(r, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
    }
  }

  auto params = model.Parameters();
  for (auto* p : params) p->ZeroGrad();
  model.ForwardBackward(batch);

  auto mean_nll = [&]() {
    std::vector<double> lp;
    model.LogProbRows(batch, &lp);
    double total = 0;
    for (double v : lp) total -= v;
    return total / static_cast<double>(batch.rows());
  };

  // eps must stay well inside the linear regime: input-side parameters
  // (pos/sos/embeddings) are initialized at std 0.02 and feed straight
  // into a LayerNorm, so the curvature there is steep (numeric gradients
  // at eps=1e-2 are ~20% off even though the analytic gradient is exact).
  const double eps = 5e-4;
  size_t checked = 0;
  for (Parameter* p : params) {
    const size_t stride = std::max<size_t>(p->count() / 4, 1);
    for (size_t i = 0; i < p->count(); i += stride) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + static_cast<float>(eps);
      const double up = mean_nll();
      p->value.data()[i] = orig - static_cast<float>(eps);
      const double down = mean_nll();
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric,
                  5e-2 + 0.05 * std::abs(numeric))
          << p->name << "[" << i << "]";
      ++checked;
    }
  }
  EXPECT_GT(checked, 30u);
}

TEST(Transformer, TrainingReducesNllTowardEntropy) {
  Table t = MakeRandomTable(1500, {6, 6, 6}, 17, /*skew=*/1.2);

  TransformerModel::Config cfg = TinyConfig(19);
  cfg.d_model = 32;
  cfg.ffn_hidden = 64;
  TransformerModel model(
      {t.column(0).DomainSize(), t.column(1).DomainSize(),
       t.column(2).DomainSize()},
      cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 25;
  tcfg.batch_size = 128;
  tcfg.lr = 5e-3;
  Trainer trainer(&model, tcfg);
  const auto curve = trainer.Train(t);
  EXPECT_LT(curve.back(), curve.front());

  const double gap = EntropyGapBits(&model, t);
  EXPECT_GE(gap, -0.15);
  EXPECT_LT(gap, 1.2);
}

TEST(Transformer, ProgressiveSamplingEndToEnd) {
  // Train on a skewed correlated table and check a range query's estimate
  // against the exact scan. Tolerance is generous (few-epoch tiny model)
  // but tight enough to catch systematic bias or mask bugs.
  Table t = MakeRandomTable(2000, {8, 10, 6}, 23, /*skew=*/1.0);
  TransformerModel::Config cfg = TinyConfig(29);
  cfg.d_model = 32;
  TransformerModel model(
      {t.column(0).DomainSize(), t.column(1).DomainSize(),
       t.column(2).DomainSize()},
      cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 20;
  tcfg.batch_size = 128;
  tcfg.lr = 5e-3;
  Trainer(&model, tcfg).Train(t);

  NaruEstimatorConfig ecfg;
  ecfg.num_samples = 800;
  ecfg.enumeration_threshold = 0;  // force sampling
  NaruEstimator est(&model, ecfg, 0, "Tfm-800");

  Query q(t, {{/*column=*/0, CompareOp::kLe,
               static_cast<int64_t>(t.column(0).DomainSize() / 2)},
              {/*column=*/1, CompareOp::kGe, 2}});
  const double truth = ExecuteSelectivity(t, q);
  const double got = est.EstimateSelectivity(q);
  ASSERT_GT(truth, 0.0);
  const double qerr = std::max(got, truth) / std::max(1e-9, std::min(got, truth));
  EXPECT_LT(qerr, 2.0) << "estimate " << got << " truth " << truth;
}

TEST(Transformer, EmbeddingReuseShrinksModel) {
  const std::vector<size_t> domains = {2000, 4};
  TransformerModel::Config with = TinyConfig(23);
  with.embedding_reuse = true;
  TransformerModel reuse(domains, with);

  TransformerModel::Config without = with;
  without.embedding_reuse = false;
  TransformerModel full(domains, without);
  EXPECT_LT(reuse.SizeBytes(), full.SizeBytes());
}

TEST(Transformer, SaveLoadRoundTrip) {
  const std::vector<size_t> domains = {5, 30, 7};
  TransformerModel a(domains, TinyConfig(31));
  TransformerModel b(domains, TinyConfig(99));  // different init

  IntMatrix tuple(1, 3);
  tuple.At(0, 0) = 4;
  tuple.At(0, 1) = 21;
  tuple.At(0, 2) = 2;
  std::vector<double> lp_a;
  a.LogProbRows(tuple, &lp_a);

  const std::string path = testing::TempDir() + "/naru_tfm_test.bin";
  ASSERT_TRUE(a.Save(path).ok());
  ASSERT_TRUE(b.Load(path).ok());
  std::vector<double> lp_b;
  b.LogProbRows(tuple, &lp_b);
  EXPECT_NEAR(lp_a[0], lp_b[0], 1e-6);
  std::remove(path.c_str());
}

TEST(Transformer, LoadRejectsMismatchedArchitecture) {
  const std::vector<size_t> domains = {5, 30, 7};
  TransformerModel a(domains, TinyConfig(31));
  const std::string path = testing::TempDir() + "/naru_tfm_mismatch.bin";
  ASSERT_TRUE(a.Save(path).ok());

  TransformerModel::Config other = TinyConfig(1);
  other.num_layers = 1;  // the file's block1.* entries have no home
  TransformerModel c(domains, other);
  EXPECT_FALSE(c.Load(path).ok());
  std::remove(path.c_str());
}

TEST(Transformer, SingleColumnDegenerate) {
  TransformerModel model({6}, TinyConfig(37));
  IntMatrix batch(2, 1);
  batch.Fill(0);
  Matrix probs;
  model.ConditionalDist(batch, 0, &probs);
  double sum = 0;
  for (size_t v = 0; v < 6; ++v) sum += probs.At(0, v);
  EXPECT_NEAR(sum, 1.0, 1e-5);
  for (size_t v = 0; v < 6; ++v) {
    EXPECT_FLOAT_EQ(probs.At(0, v), probs.At(1, v));
  }
}

TEST(Transformer, SequenceTruncationMatchesFullForward) {
  // ConditionalDist runs attention over col+1 positions only; the result
  // must equal what a full-length forward would produce for that head.
  const std::vector<size_t> domains = {5, 7, 6, 4};
  TransformerModel model(domains, TinyConfig(41));
  IntMatrix tuple(2, 4);
  Rng rng(43);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      tuple.At(r, c) = static_cast<int32_t>(rng.UniformInt(domains[c]));
    }
  }
  // Full-length chain via LogProbRows vs truncated ConditionalDist chain.
  std::vector<double> lp;
  model.LogProbRows(tuple, &lp);
  for (size_t r = 0; r < 2; ++r) {
    double chain = 0;
    for (size_t c = 0; c < 4; ++c) {
      Matrix probs;
      model.ConditionalDist(tuple, c, &probs);
      chain += std::log(static_cast<double>(
          probs.At(r, static_cast<size_t>(tuple.At(r, c)))));
    }
    EXPECT_NEAR(lp[r], chain, 1e-4);
  }
}

}  // namespace
}  // namespace naru
