// Unit tests for the NN substrate: analytic gradients vs finite
// differences, mask invariants, optimizer convergence, serialization.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/masked_linear.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "util/random.h"

namespace naru {
namespace {

// Scalar objective for gradient checking: sum of squares of the MLP output.
double Objective(Mlp* mlp, const Matrix& x) {
  Matrix y;
  mlp->Forward(x, &y);
  double s = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    s += 0.5 * static_cast<double>(y.data()[i]) * y.data()[i];
  }
  return s;
}

TEST(Mlp, GradientMatchesFiniteDifference) {
  Rng rng(21);
  Mlp mlp("t", {4, 6, 3}, &rng);
  Matrix x(5, 4);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian());
  }

  // Analytic gradients: d(0.5*sum y^2)/dy = y.
  Matrix y;
  mlp.Forward(x, &y);
  mlp.Backward(y, nullptr);

  std::vector<Parameter*> params;
  mlp.CollectParameters(&params);
  const double eps = 1e-3;
  for (Parameter* p : params) {
    for (size_t i = 0; i < std::min<size_t>(p->count(), 10); ++i) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + static_cast<float>(eps);
      const double up = Objective(&mlp, x);
      p->value.data()[i] = orig - static_cast<float>(eps);
      const double down = Objective(&mlp, x);
      p->value.data()[i] = orig;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(p->grad.data()[i], numeric, 2e-2)
          << p->name << " index " << i;
    }
    p->ZeroGrad();
  }
}

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  Linear layer("l", 3, 2, &rng);
  layer.bias().value.At(0, 0) = 1.0f;
  Matrix x(4, 3);
  x.Zero();
  Matrix y;
  layer.Forward(x, &y);
  ASSERT_EQ(y.rows(), 4u);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_FLOAT_EQ(y.At(0, 0), 1.0f);  // zero input -> bias
}

TEST(MaskedLinear, MaskedWeightsStayZero) {
  Rng rng(2);
  Matrix mask(3, 4);
  mask.Fill(0.0f);
  mask.At(0, 0) = 1.0f;
  mask.At(2, 3) = 1.0f;
  MaskedLinear layer("m", 3, 4, mask, &rng);
  // Initially projected.
  EXPECT_FLOAT_EQ(layer.weight().value.At(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(layer.weight().value.At(0, 1), 0.0f);

  // Train a few steps; masked entries must remain exactly zero.
  std::vector<Parameter*> params;
  layer.CollectParameters(&params);
  Adam adam(params, AdamOptions{});
  Matrix x(8, 3);
  Rng data_rng(3);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(data_rng.Gaussian());
  }
  for (int step = 0; step < 5; ++step) {
    Matrix y;
    layer.Forward(x, &y);
    layer.Backward(x, y, nullptr);  // arbitrary upstream grad = y
    adam.Step();
  }
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (mask.At(i, j) == 0.0f) {
        EXPECT_FLOAT_EQ(layer.weight().value.At(i, j), 0.0f);
      }
    }
  }
}

TEST(MaskedLinear, OutputRespectsMask) {
  Rng rng(4);
  // Mask where output 0 sees only input 0.
  Matrix mask(2, 1);
  mask.At(0, 0) = 1.0f;
  mask.At(1, 0) = 0.0f;
  MaskedLinear layer("m", 2, 1, mask, &rng);
  Matrix x(1, 2);
  x.At(0, 0) = 1.0f;
  x.At(0, 1) = 5.0f;
  Matrix y1;
  layer.Forward(x, &y1);
  x.At(0, 1) = -100.0f;  // changing masked input must not change output
  Matrix y2;
  layer.Forward(x, &y2);
  EXPECT_FLOAT_EQ(y1.At(0, 0), y2.At(0, 0));
}

TEST(Embedding, LookupAndAccumulate) {
  Rng rng(5);
  Embedding emb("e", 10, 4, &rng);
  const int32_t codes[3] = {2, 7, 2};
  Matrix dst(3, 6);
  dst.Zero();
  emb.Lookup(codes, 3, &dst, 1);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(dst.At(0, 1 + j), emb.table().value.At(2, j));
    EXPECT_FLOAT_EQ(dst.At(1, 1 + j), emb.table().value.At(7, j));
    EXPECT_FLOAT_EQ(dst.At(0, 1 + j), dst.At(2, 1 + j));
  }
  Matrix grad(3, 6);
  grad.Fill(1.0f);
  emb.Accumulate(codes, 3, grad, 1);
  // Code 2 was used twice.
  EXPECT_FLOAT_EQ(emb.table().grad.At(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(emb.table().grad.At(7, 0), 1.0f);
  EXPECT_FLOAT_EQ(emb.table().grad.At(3, 0), 0.0f);
}

TEST(SoftmaxCrossEntropy, LossAndGradient) {
  // Two classes with known logits.
  Matrix logits(1, 2);
  logits.At(0, 0) = 0.0f;
  logits.At(0, 1) = 0.0f;
  Matrix dlogits(1, 2);
  dlogits.Zero();
  const int32_t target = 1;
  const double nll =
      SoftmaxCrossEntropySlice(logits, 0, 2, &target, 1.0f, &dlogits);
  EXPECT_NEAR(nll, std::log(2.0), 1e-6);
  EXPECT_NEAR(dlogits.At(0, 0), 0.5f, 1e-6);   // p - 0
  EXPECT_NEAR(dlogits.At(0, 1), -0.5f, 1e-6);  // p - 1
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2 via gradient 2(w - 3).
  Parameter w("w", 1, 1);
  w.value.At(0, 0) = 0.0f;
  AdamOptions opts;
  opts.lr = 0.1;
  Adam adam({&w}, opts);
  for (int i = 0; i < 500; ++i) {
    w.grad.At(0, 0) = 2.0f * (w.value.At(0, 0) - 3.0f);
    adam.Step();
  }
  EXPECT_NEAR(w.value.At(0, 0), 3.0f, 1e-2);
}

TEST(Adam, GlobalNormClipping) {
  Parameter w("w", 1, 2);
  AdamOptions opts;
  opts.lr = 1.0;
  opts.clip_global_norm = 1e-12;  // effectively zero gradient
  Adam adam({&w}, opts);
  w.grad.At(0, 0) = 100.0f;
  w.grad.At(0, 1) = -100.0f;
  adam.Step();
  EXPECT_NEAR(w.value.At(0, 0), 0.0f, 1e-3);
}

TEST(Serialize, RoundTrip) {
  Rng rng(6);
  Mlp a("net", {3, 5, 2}, &rng);
  Mlp b("net", {3, 5, 2}, &rng);  // different init

  const std::string path = testing::TempDir() + "/naru_params_test.bin";
  std::vector<Parameter*> pa;
  a.CollectParameters(&pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());
  std::vector<Parameter*> pb;
  b.CollectParameters(&pb);
  ASSERT_TRUE(LoadParameters(path, pb).ok());

  Matrix x(2, 3);
  x.Fill(0.3f);
  Matrix ya;
  Matrix yb;
  a.ForwardInference(x, &ya);
  b.ForwardInference(x, &yb);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchFails) {
  Rng rng(7);
  Mlp a("net", {3, 5, 2}, &rng);
  Mlp b("net", {3, 4, 2}, &rng);
  const std::string path = testing::TempDir() + "/naru_params_bad.bin";
  std::vector<Parameter*> pa;
  a.CollectParameters(&pa);
  ASSERT_TRUE(SaveParameters(path, pa).ok());
  std::vector<Parameter*> pb;
  b.CollectParameters(&pb);
  EXPECT_FALSE(LoadParameters(path, pb).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace naru
