// Tests for the network serving front-end (src/net/): the wire protocol's
// lossless round-trip contract, the malformed-input taxonomy, the
// multi-tenant registry catalog, and the live server over a real loopback
// socket — bit-exact estimates, per-frame error recovery, graceful drain
// with no dropped in-flight futures, and two-tenant isolation under
// flood.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/made.h"
#include "core/naru_estimator.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/registry.h"
#include "net/server.h"
#include "query/workload.h"
#include "serve/trace_format.h"
#include "util/thread_pool.h"

namespace naru {
namespace {

// ---- Shared fixtures (the serving-test idiom) ---------------------------

Table SmallTable(uint64_t seed) {
  return MakeRandomTable(600, {7, 5, 9, 4, 6}, seed, /*skew=*/1.0);
}

std::unique_ptr<MadeModel> SmallTrainedModel(const Table& table,
                                             uint64_t seed) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {24, 24};
  cfg.encoder.onehot_threshold = 16;
  cfg.seed = seed;
  auto model = std::make_unique<MadeModel>(
      std::vector<size_t>{7, 5, 9, 4, 6}, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 128;
  Trainer(model.get(), tcfg).Train(table);
  return model;
}

std::vector<Query> SmallWorkload(const Table& table, size_t n,
                                 uint64_t seed) {
  WorkloadConfig wcfg;
  wcfg.num_queries = n;
  wcfg.min_filters = 1;
  wcfg.max_filters = 5;
  wcfg.seed = seed;
  return GenerateWorkload(table, wcfg);
}

std::vector<size_t> TableDomains(const Table& table) {
  std::vector<size_t> domains;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    domains.push_back(table.column(c).DomainSize());
  }
  return domains;
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Little-endian raw-byte helpers for hand-crafting (mal)formed frames.
void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Wraps a payload in a length prefix (the payload may be deliberately
/// malformed; the prefix is honest unless `lie` overrides it).
std::string WrapFrame(const std::string& payload) {
  std::string out;
  AppendU32(static_cast<uint32_t>(payload.size()), &out);
  out += payload;
  return out;
}

WireEstimateRequest SampleRequest() {
  WireEstimateRequest msg;
  msg.request_id = 0x0123456789abcdefull;
  msg.tenant = "tenant-x";
  msg.regions.push_back(ValueSet::All(7));
  msg.regions.push_back(ValueSet::Interval(5, 1, 3));
  msg.regions.push_back(ValueSet::Set(9, {8, 0, 2, 2}));
  msg.regions.push_back(ValueSet::Empty(4));
  msg.num_samples = 512;
  msg.deadline_ms = 12.5;
  msg.priority = RequestPriority::kHigh;
  msg.cache_policy = CachePolicy::kBypass;
  return msg;
}

// ---- Wire protocol: lossless round trips --------------------------------

TEST(NetProtocol, EstimateRequestRoundTripsBitExactly) {
  const WireEstimateRequest msg = SampleRequest();
  std::string bytes;
  EncodeEstimateRequest(msg, &bytes);

  Status size_err;
  const size_t size = FrameSizeBytes(bytes, kMaxFramePayloadBytes,
                                     &size_err);
  ASSERT_TRUE(size_err.ok()) << size_err.ToString();
  ASSERT_EQ(size, bytes.size());

  Frame frame;
  ASSERT_TRUE(
      DecodeFrame(std::string_view(bytes).substr(kFrameHeaderBytes), &frame)
          .ok());
  ASSERT_EQ(frame.type, FrameType::kEstimateRequest);
  const WireEstimateRequest& got = frame.request;
  EXPECT_EQ(got.request_id, msg.request_id);
  EXPECT_EQ(got.tenant, msg.tenant);
  EXPECT_EQ(got.num_samples, msg.num_samples);
  EXPECT_EQ(Bits(got.deadline_ms), Bits(msg.deadline_ms));
  EXPECT_EQ(got.priority, msg.priority);
  EXPECT_EQ(got.cache_policy, msg.cache_policy);
  ASSERT_EQ(got.regions.size(), msg.regions.size());
  for (size_t i = 0; i < msg.regions.size(); ++i) {
    EXPECT_EQ(got.regions[i].kind(), msg.regions[i].kind()) << i;
    EXPECT_EQ(got.regions[i].domain(), msg.regions[i].domain()) << i;
    EXPECT_EQ(got.regions[i].Count(), msg.regions[i].Count()) << i;
  }

  // The strongest lossless check: re-encoding the decoded message must
  // reproduce the original frame byte for byte.
  std::string again;
  EncodeEstimateRequest(got, &again);
  ASSERT_EQ(again.size(), bytes.size());
  EXPECT_EQ(std::memcmp(again.data(), bytes.data(), bytes.size()), 0);
}

TEST(NetProtocol, ResponseCarriesDoublesAsExactBitPatterns) {
  WireEstimateResponse msg;
  msg.request_id = 42;
  msg.status_code = StatusCode::kDeadlineExceeded;
  msg.status_message = "expired before dispatch";
  msg.estimate = std::numeric_limits<double>::quiet_NaN();
  msg.std_error = std::numeric_limits<double>::infinity();
  msg.provenance = ResultProvenance::kShed;
  msg.samples_used = 0;
  msg.queue_ms = 0.1 + 0.2;  // a value with a non-terminating binary tail
  msg.compute_ms = 5e-324;   // smallest subnormal double
  msg.retry_after_ms = 17.25;

  std::string bytes;
  EncodeEstimateResponse(msg, &bytes);
  Frame frame;
  ASSERT_TRUE(
      DecodeFrame(std::string_view(bytes).substr(kFrameHeaderBytes), &frame)
          .ok());
  ASSERT_EQ(frame.type, FrameType::kEstimateResponse);
  const WireEstimateResponse& got = frame.response;
  EXPECT_EQ(got.request_id, msg.request_id);
  EXPECT_EQ(got.status_code, msg.status_code);
  EXPECT_EQ(got.status_message, msg.status_message);
  EXPECT_EQ(Bits(got.estimate), Bits(msg.estimate));  // NaN payload intact
  EXPECT_EQ(Bits(got.std_error), Bits(msg.std_error));
  EXPECT_EQ(Bits(got.queue_ms), Bits(msg.queue_ms));
  EXPECT_EQ(Bits(got.compute_ms), Bits(msg.compute_ms));
  EXPECT_EQ(Bits(got.retry_after_ms), Bits(msg.retry_after_ms));
  EXPECT_EQ(got.provenance, msg.provenance);
  EXPECT_EQ(got.samples_used, msg.samples_used);

  std::string again;
  EncodeEstimateResponse(got, &again);
  ASSERT_EQ(again, bytes);
}

TEST(NetProtocol, ControlAndErrorFramesRoundTrip) {
  WireControlRequest creq;
  creq.request_id = 7;
  creq.verb = ControlVerb::kList;
  creq.tenant = "alpha";
  std::string bytes;
  EncodeControlRequest(creq, &bytes);
  Frame frame;
  ASSERT_TRUE(
      DecodeFrame(std::string_view(bytes).substr(kFrameHeaderBytes), &frame)
          .ok());
  ASSERT_EQ(frame.type, FrameType::kControlRequest);
  EXPECT_EQ(frame.control.request_id, 7u);
  EXPECT_EQ(frame.control.verb, ControlVerb::kList);
  EXPECT_EQ(frame.control.tenant, "alpha");

  WireControlResponse cresp;
  cresp.request_id = 7;
  cresp.status_code = StatusCode::kNotFound;
  cresp.status_message = "no tenant named 'zeta'";
  cresp.text = "line1\nline2\n";
  bytes.clear();
  EncodeControlResponse(cresp, &bytes);
  ASSERT_TRUE(
      DecodeFrame(std::string_view(bytes).substr(kFrameHeaderBytes), &frame)
          .ok());
  ASSERT_EQ(frame.type, FrameType::kControlResponse);
  EXPECT_EQ(frame.control_response.status_code, StatusCode::kNotFound);
  EXPECT_EQ(frame.control_response.text, "line1\nline2\n");

  WireError err;
  err.request_id = 9;
  err.status_code = StatusCode::kInvalidArgument;
  err.message = "trailing bytes after body";
  err.fatal = true;
  bytes.clear();
  EncodeError(err, &bytes);
  ASSERT_TRUE(
      DecodeFrame(std::string_view(bytes).substr(kFrameHeaderBytes), &frame)
          .ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.error.request_id, 9u);
  EXPECT_EQ(frame.error.message, "trailing bytes after body");
  EXPECT_TRUE(frame.error.fatal);
}

TEST(NetProtocol, FrameSizeBytesHandlesPartialAndPoisonedPrefixes) {
  Status error;
  // Nothing buffered / partial prefix / partial payload: 0, no error.
  EXPECT_EQ(FrameSizeBytes("", kMaxFramePayloadBytes, &error), 0u);
  EXPECT_TRUE(error.ok());
  EXPECT_EQ(FrameSizeBytes("\x02\x00", kMaxFramePayloadBytes, &error), 0u);
  EXPECT_TRUE(error.ok());
  std::string partial;
  AppendU32(10, &partial);
  partial += "abc";  // 3 of 10 payload bytes buffered
  EXPECT_EQ(FrameSizeBytes(partial, kMaxFramePayloadBytes, &error), 0u);
  EXPECT_TRUE(error.ok());

  // A complete minimal frame.
  std::string whole;
  AppendU32(2, &whole);
  whole += '\x01';
  whole += '\x05';
  EXPECT_EQ(FrameSizeBytes(whole, kMaxFramePayloadBytes, &error), 6u);
  EXPECT_TRUE(error.ok());

  // Oversized prefix: poisoned stream, typed error.
  std::string oversized;
  AppendU32(0xffffffffu, &oversized);
  error = Status::OK();
  EXPECT_EQ(FrameSizeBytes(oversized, kMaxFramePayloadBytes, &error), 0u);
  EXPECT_FALSE(error.ok());

  // A payload too small to carry version + type is equally unusable.
  std::string tiny;
  AppendU32(1, &tiny);
  error = Status::OK();
  EXPECT_EQ(FrameSizeBytes(tiny, kMaxFramePayloadBytes, &error), 0u);
  EXPECT_FALSE(error.ok());
}

TEST(NetProtocol, DecodeRejectsEveryMalformationClass) {
  Frame frame;
  // Unsupported version.
  EXPECT_EQ(DecodeFrame(std::string("\x07\x01", 2), &frame).code(),
            StatusCode::kInvalidArgument);
  // Unknown frame type.
  EXPECT_EQ(DecodeFrame(std::string("\x01\x63", 2), &frame).code(),
            StatusCode::kInvalidArgument);
  // Truncated body (estimate request with nothing after the type byte).
  EXPECT_EQ(DecodeFrame(std::string("\x01\x01", 2), &frame).code(),
            StatusCode::kInvalidArgument);

  // Trailing bytes after a well-formed body.
  std::string bytes;
  WireControlRequest creq;
  creq.verb = ControlVerb::kStats;
  EncodeControlRequest(creq, &bytes);
  std::string payload(std::string_view(bytes).substr(kFrameHeaderBytes));
  payload += '\0';
  EXPECT_EQ(DecodeFrame(payload, &frame).code(),
            StatusCode::kInvalidArgument);

  // Out-of-range priority enum (penultimate payload byte by encode order).
  bytes.clear();
  EncodeEstimateRequest(SampleRequest(), &bytes);
  std::string bad(std::string_view(bytes).substr(kFrameHeaderBytes));
  bad[bad.size() - 2] = '\x09';
  Status st = DecodeFrame(bad, &frame);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("priority"), std::string::npos);

  // Out-of-range control verb.
  bytes.clear();
  EncodeControlRequest(creq, &bytes);
  std::string bad_verb(std::string_view(bytes).substr(kFrameHeaderBytes));
  // verb is the byte right after version+type+id: offset 2 + 8.
  bad_verb[2 + 8] = '\x09';
  EXPECT_EQ(DecodeFrame(bad_verb, &frame).code(),
            StatusCode::kInvalidArgument);

  // A region count the remaining bytes cannot possibly carry.
  std::string lie;
  lie += '\x01';  // version
  lie += '\x01';  // estimate request
  AppendU64(1, &lie);     // request_id
  AppendU32(0, &lie);     // tenant: empty string
  AppendU32(100000, &lie);  // region count with no region bytes behind it
  EXPECT_EQ(DecodeFrame(lie, &frame).code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocol, ToEstimateRequestPinsRelativeDeadline) {
  WireEstimateRequest wire = SampleRequest();
  wire.deadline_ms = 250.0;
  const auto now = std::chrono::steady_clock::now();
  EstimateRequest req = ToEstimateRequest(wire, now);
  ASSERT_TRUE(req.options.has_deadline());
  const double delta_ms =
      std::chrono::duration<double, std::milli>(req.options.deadline - now)
          .count();
  EXPECT_NEAR(delta_ms, 250.0, 1e-6);
  EXPECT_EQ(req.options.num_samples, wire.num_samples);
  EXPECT_EQ(req.options.priority, wire.priority);
  EXPECT_EQ(req.options.cache_policy, wire.cache_policy);
  EXPECT_EQ(req.query.regions().size(), wire.regions.size());

  wire.deadline_ms = -1.0;
  EXPECT_FALSE(ToEstimateRequest(wire, now).options.has_deadline());
}

TEST(NetProtocol, WireResponseReconstructsEstimateResultBitExactly) {
  EstimateResult result;
  result.estimate = 0.1234567890123456789;
  result.status = Status::OK();
  result.std_error = 3.5e-3;
  result.provenance = ResultProvenance::kSampled;
  result.samples_used = 777;
  result.queue_ms = 1.5;
  result.compute_ms = 2.25;
  result.retry_after_ms = 0.0;

  const WireEstimateResponse wire = ToWireResponse(31, result);
  EXPECT_EQ(wire.request_id, 31u);
  const EstimateResult back = FromWireResponse(wire);
  EXPECT_EQ(Bits(back.estimate), Bits(result.estimate));
  EXPECT_EQ(Bits(back.std_error), Bits(result.std_error));
  EXPECT_EQ(back.status.code(), StatusCode::kOk);
  EXPECT_EQ(back.provenance, result.provenance);
  EXPECT_EQ(back.samples_used, result.samples_used);

  // Non-OK results carry code + message through.
  EstimateResult shed;
  shed.status = Status::ResourceExhausted("pending queue full");
  shed.provenance = ResultProvenance::kShed;
  shed.retry_after_ms = 12.0;
  const EstimateResult back2 = FromWireResponse(ToWireResponse(32, shed));
  EXPECT_EQ(back2.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(back2.status.ToString().find("pending queue full"),
            std::string::npos);
  EXPECT_EQ(back2.retry_after_ms, 12.0);
}

// ---- Client helpers -----------------------------------------------------

TEST(NetClientHelpers, ParseHostPortAcceptsAllThreeForms) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("10.1.2.3:4567", &host, &port).ok());
  EXPECT_EQ(host, "10.1.2.3");
  EXPECT_EQ(port, 4567);
  ASSERT_TRUE(ParseHostPort(":8080", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  ASSERT_TRUE(ParseHostPort("9090", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9090);

  EXPECT_FALSE(ParseHostPort("", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:abc", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:0", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:70000", &host, &port).ok());
}

// ---- Trace-line format (shared by stdin serve / --connect / bench) ------

TEST(TraceFormat, ParsesPrefixTokensInAnyOrder) {
  std::string rest;
  TracePrefix p = ParseTracePrefix("@1250 ^high ~5 c0=1", &rest);
  EXPECT_EQ(p.arrival_ms, 1250.0);
  EXPECT_EQ(p.deadline_ms, 5.0);
  EXPECT_EQ(p.priority, RequestPriority::kHigh);
  EXPECT_EQ(rest, "c0=1");

  p = ParseTracePrefix("~2.5 ^low @10 c0=1 AND c1<=3", &rest);
  EXPECT_EQ(p.arrival_ms, 10.0);
  EXPECT_EQ(p.deadline_ms, 2.5);
  EXPECT_EQ(p.priority, RequestPriority::kLow);
  EXPECT_EQ(rest, "c0=1 AND c1<=3");

  // No prefix: defaults, whole line passes through.
  p = ParseTracePrefix("c0=1", &rest);
  EXPECT_LT(p.arrival_ms, 0);
  EXPECT_LT(p.deadline_ms, 0);
  EXPECT_EQ(p.priority, RequestPriority::kNormal);
  EXPECT_EQ(rest, "c0=1");

  // Malformed tokens are left in place for the predicate parser.
  p = ParseTracePrefix("^urgent c0=1", &rest);
  EXPECT_EQ(rest, "^urgent c0=1");
  p = ParseTracePrefix("@-5 c0=1", &rest);
  EXPECT_EQ(rest, "@-5 c0=1");
}

TEST(TraceFormat, ApplyToStampsOptionsAndFormatLineShowsRetryHint) {
  TracePrefix p;
  p.priority = RequestPriority::kHigh;
  p.deadline_ms = 100.0;
  EstimateOptions options;
  const auto before = std::chrono::steady_clock::now();
  p.ApplyTo(&options);
  EXPECT_EQ(options.priority, RequestPriority::kHigh);
  ASSERT_TRUE(options.has_deadline());
  EXPECT_GE(options.deadline, before);

  EstimateResult ok;
  ok.estimate = 0.25;
  ok.status = Status::OK();
  const std::string line = FormatResultLine(ok, 1000, "c0=1");
  EXPECT_EQ(line, "0.25\t250\tc0=1\n");

  EstimateResult shed;
  shed.status = Status::ResourceExhausted("pending queue full");
  shed.retry_after_ms = 40.0;
  const std::string na = FormatResultLine(shed, 1000, "c0=1");
  EXPECT_NE(na.find("NA\tNA\tc0=1\t# "), std::string::npos);
  EXPECT_NE(na.find("(retry in 40 ms)"), std::string::npos);
}

// ---- Model registry -----------------------------------------------------

TEST(ModelRegistry, CatalogOperationsAndTypedFailures) {
  const Table table = SmallTable(11);
  ModelRegistry registry;
  TenantOptions topts;
  topts.engine.engine.num_threads = 1;

  auto add = [&](const std::string& name, uint64_t seed) {
    auto model = SmallTrainedModel(table, seed);
    const size_t bytes = model->SizeBytes();
    return registry.AddTenant(name, "t", table.num_rows(),
                              TableDomains(table), std::move(model), bytes,
                              topts);
  };

  EXPECT_EQ(registry.NumTenants(), 0u);
  ASSERT_TRUE(add("beta", 1).ok());
  ASSERT_TRUE(add("alpha", 2).ok());
  EXPECT_EQ(add("alpha", 3).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(add("", 4).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry
                .AddTenant("gamma", "t", 1, {7}, nullptr, 0, topts)
                .code(),
            StatusCode::kInvalidArgument);

  EXPECT_TRUE(registry.HasTenant("alpha"));
  EXPECT_FALSE(registry.HasTenant("gamma"));
  EXPECT_EQ(registry.NumTenants(), 2u);
  // Sorted names: stable LIST output.
  EXPECT_EQ(registry.TenantNames(),
            (std::vector<std::string>{"alpha", "beta"}));

  const std::string list = registry.FormatTenantList();
  EXPECT_NE(list.find("alpha"), std::string::npos);
  EXPECT_NE(list.find("beta"), std::string::npos);

  // Get keeps a dropped tenant alive until the reference is released.
  std::shared_ptr<Tenant> held = registry.GetTenant("alpha");
  ASSERT_NE(held, nullptr);
  ASSERT_TRUE(registry.DropTenant("alpha").ok());
  EXPECT_EQ(registry.DropTenant("alpha").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.GetTenant("alpha"), nullptr);
  EXPECT_NE(held->engine, nullptr);  // still usable
  held.reset();
}

TEST(ModelRegistry, ValidateRegionsEnforcesTenantSchema) {
  const Table table = SmallTable(12);
  ModelRegistry registry;
  TenantOptions topts;
  topts.engine.engine.num_threads = 1;
  auto model = SmallTrainedModel(table, 5);
  const size_t bytes = model->SizeBytes();
  ASSERT_TRUE(registry
                  .AddTenant("t", "t", table.num_rows(),
                             TableDomains(table), std::move(model), bytes,
                             topts)
                  .ok());
  const std::shared_ptr<Tenant> tenant = registry.GetTenant("t");
  ASSERT_NE(tenant, nullptr);

  std::vector<ValueSet> good;
  for (size_t d : TableDomains(table)) good.push_back(ValueSet::All(d));
  EXPECT_TRUE(tenant->ValidateRegions(good).ok());

  std::vector<ValueSet> short_query(good.begin(), good.end() - 1);
  EXPECT_EQ(tenant->ValidateRegions(short_query).code(),
            StatusCode::kInvalidArgument);

  std::vector<ValueSet> wrong_domain = good;
  wrong_domain[0] = ValueSet::All(99);
  EXPECT_EQ(tenant->ValidateRegions(wrong_domain).code(),
            StatusCode::kInvalidArgument);
}

// ---- Live server over a loopback socket ---------------------------------

/// Builds a two-tenant server: "alpha" throttled (bounded admission, no
/// cache, single-request batches) and "beta" standard but cache-free so
/// repeated runs do identical work. References are computed before the
/// models move into the registry.
class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alpha_table_ = SmallTable(101);
    beta_table_ = SmallTable(202);
    auto alpha_model = SmallTrainedModel(alpha_table_, 1);
    auto beta_model = SmallTrainedModel(beta_table_, 2);

    ncfg_.num_samples = 64;
    ncfg_.enumeration_threshold = 0;  // every request is a sampled walk

    beta_queries_ = SmallWorkload(beta_table_, 12, 77);
    flood_queries_ = SmallWorkload(alpha_table_, 48, 78);
    {
      ScopedSerialRegion serial;
      NaruEstimator beta_est(beta_model.get(), ncfg_,
                             beta_model->SizeBytes());
      for (const Query& q : beta_queries_) {
        beta_ref_.push_back(beta_est.EstimateSelectivity(q));
      }
    }

    TenantOptions alpha_opts;
    alpha_opts.estimator = ncfg_;
    alpha_opts.engine.max_batch_size = 1;
    alpha_opts.engine.max_wait_ms = 0.0;
    alpha_opts.engine.max_pending = 4;
    alpha_opts.engine.engine.num_threads = 1;
    alpha_opts.engine.engine.enable_cache = false;
    const size_t alpha_bytes = alpha_model->SizeBytes();
    ASSERT_TRUE(registry_
                    .AddTenant("alpha", "alpha_t", alpha_table_.num_rows(),
                               TableDomains(alpha_table_),
                               std::move(alpha_model), alpha_bytes,
                               alpha_opts)
                    .ok());

    TenantOptions beta_opts;
    beta_opts.estimator = ncfg_;
    beta_opts.engine.max_batch_size = 8;
    beta_opts.engine.max_wait_ms = 0.5;
    beta_opts.engine.engine.num_threads = 1;
    beta_opts.engine.engine.enable_cache = false;
    const size_t beta_bytes = beta_model->SizeBytes();
    ASSERT_TRUE(registry_
                    .AddTenant("beta", "beta_t", beta_table_.num_rows(),
                               TableDomains(beta_table_),
                               std::move(beta_model), beta_bytes,
                               beta_opts)
                    .ok());

    ASSERT_TRUE(server_.Start().ok());
    ASSERT_NE(server_.port(), 0);
  }

  void TearDown() override { server_.Shutdown(); }

  Status ConnectClient(NetClient* client) {
    Status st = client->Connect("127.0.0.1", server_.port());
    if (st.ok()) st = client->SetRecvTimeoutMs(20000);
    return st;
  }

  WireEstimateRequest MakeWire(const std::string& tenant, const Query& q,
                               uint64_t id) {
    WireEstimateRequest wire;
    wire.request_id = id;
    wire.tenant = tenant;
    wire.regions = q.regions();
    return wire;
  }

  /// Pipelines `queries` on one connection and returns the responses
  /// keyed by request_id (ids are 1-based indices).
  std::map<uint64_t, WireEstimateResponse> RunTrace(
      NetClient* client, const std::string& tenant,
      const std::vector<Query>& queries) {
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(
          client->SendEstimate(MakeWire(tenant, queries[i], i + 1)).ok());
    }
    std::map<uint64_t, WireEstimateResponse> got;
    while (got.size() < queries.size()) {
      Frame frame;
      const Status st = client->ReadFrame(&frame);
      EXPECT_TRUE(st.ok()) << st.ToString();
      if (!st.ok()) break;
      EXPECT_EQ(frame.type, FrameType::kEstimateResponse);
      got[frame.response.request_id] = frame.response;
    }
    return got;
  }

  Table alpha_table_{"alpha_t"};
  Table beta_table_{"beta_t"};
  NaruEstimatorConfig ncfg_;
  std::vector<Query> beta_queries_;
  std::vector<Query> flood_queries_;
  std::vector<double> beta_ref_;
  ModelRegistry registry_;
  NetServer server_{&registry_};
};

TEST_F(NetServerTest, EstimatesCrossTheWireBitExactly) {
  NetClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());
  const auto got = RunTrace(&client, "beta", beta_queries_);
  ASSERT_EQ(got.size(), beta_queries_.size());
  for (size_t i = 0; i < beta_queries_.size(); ++i) {
    const auto it = got.find(i + 1);
    ASSERT_NE(it, got.end()) << "missing response for request " << i + 1;
    EXPECT_EQ(it->second.status_code, StatusCode::kOk);
    EXPECT_EQ(Bits(it->second.estimate), Bits(beta_ref_[i]))
        << "estimate " << i << " diverged across the wire";
  }
}

TEST_F(NetServerTest, UnknownTenantAndSchemaMismatchAreTypedResponses) {
  NetClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  WireEstimateResponse resp;
  ASSERT_TRUE(
      client
          .CallEstimate(MakeWire("no-such-tenant", beta_queries_[0], 1),
                        &resp)
          .ok());
  EXPECT_EQ(resp.status_code, StatusCode::kNotFound);
  EXPECT_EQ(resp.request_id, 1u);

  // Right tenant name, wrong schema (beta's query against alpha).
  std::vector<ValueSet> wrong{ValueSet::All(3)};
  WireEstimateRequest bad;
  bad.request_id = 2;
  bad.tenant = "alpha";
  bad.regions = wrong;
  ASSERT_TRUE(client.CallEstimate(bad, &resp).ok());
  EXPECT_EQ(resp.status_code, StatusCode::kInvalidArgument);

  // The connection survived both rejections.
  ASSERT_TRUE(
      client.CallEstimate(MakeWire("beta", beta_queries_[0], 3), &resp)
          .ok());
  EXPECT_EQ(resp.status_code, StatusCode::kOk);
  EXPECT_EQ(Bits(resp.estimate), Bits(beta_ref_[0]));

  EXPECT_GE(server_.stats().rejected_requests, 2u);
}

TEST_F(NetServerTest, MalformedFramesGetTypedErrorsAndStreamSurvives) {
  NetClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Bad version: per-frame error, connection keeps serving.
  ASSERT_TRUE(client.SendRaw(WrapFrame(std::string("\x07\x01", 2))).ok());
  Frame frame;
  ASSERT_TRUE(client.ReadFrame(&frame).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_FALSE(frame.error.fatal);
  EXPECT_EQ(frame.error.status_code, StatusCode::kInvalidArgument);

  // Unknown frame type.
  ASSERT_TRUE(client.SendRaw(WrapFrame(std::string("\x01\x63", 2))).ok());
  ASSERT_TRUE(client.ReadFrame(&frame).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_FALSE(frame.error.fatal);

  // Truncated estimate-request body.
  ASSERT_TRUE(client.SendRaw(WrapFrame(std::string("\x01\x01", 2))).ok());
  ASSERT_TRUE(client.ReadFrame(&frame).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_FALSE(frame.error.fatal);

  // The stream is still perfectly usable for real requests.
  WireEstimateResponse resp;
  ASSERT_TRUE(
      client.CallEstimate(MakeWire("beta", beta_queries_[1], 10), &resp)
          .ok());
  EXPECT_EQ(Bits(resp.estimate), Bits(beta_ref_[1]));

  EXPECT_GE(server_.stats().protocol_errors, 3u);
  EXPECT_EQ(server_.stats().poisoned_streams, 0u);
}

TEST_F(NetServerTest, PoisonedPrefixClosesStreamButNotTheServer) {
  NetClient poisoner;
  ASSERT_TRUE(ConnectClient(&poisoner).ok());

  // An oversized length prefix cannot be resynchronized: the server must
  // reply with a FATAL typed error and close this connection.
  std::string huge_prefix;
  AppendU32(0xffffffffu, &huge_prefix);
  ASSERT_TRUE(poisoner.SendRaw(huge_prefix).ok());
  Frame frame;
  ASSERT_TRUE(poisoner.ReadFrame(&frame).ok());
  ASSERT_EQ(frame.type, FrameType::kError);
  EXPECT_TRUE(frame.error.fatal);
  // Next read hits EOF: the server closed the poisoned stream.
  Status eof = poisoner.ReadFrame(&frame);
  EXPECT_FALSE(eof.ok());

  // A fresh connection is served normally: the poison was per-stream.
  NetClient fresh;
  ASSERT_TRUE(ConnectClient(&fresh).ok());
  WireEstimateResponse resp;
  ASSERT_TRUE(
      fresh.CallEstimate(MakeWire("beta", beta_queries_[2], 1), &resp)
          .ok());
  EXPECT_EQ(Bits(resp.estimate), Bits(beta_ref_[2]));

  EXPECT_GE(server_.stats().poisoned_streams, 1u);
}

TEST_F(NetServerTest, ControlVerbsListAndStats) {
  NetClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  WireControlRequest list;
  list.request_id = 1;
  list.verb = ControlVerb::kList;
  WireControlResponse resp;
  ASSERT_TRUE(client.CallControl(list, &resp).ok());
  EXPECT_EQ(resp.status_code, StatusCode::kOk);
  const size_t alpha_at = resp.text.find("alpha");
  const size_t beta_at = resp.text.find("beta");
  ASSERT_NE(alpha_at, std::string::npos);
  ASSERT_NE(beta_at, std::string::npos);
  EXPECT_LT(alpha_at, beta_at);  // sorted catalog order

  WireControlRequest stats;
  stats.request_id = 2;
  stats.verb = ControlVerb::kStats;
  stats.tenant = "beta";
  ASSERT_TRUE(client.CallControl(stats, &resp).ok());
  EXPECT_EQ(resp.status_code, StatusCode::kOk);
  EXPECT_NE(resp.text.find("beta"), std::string::npos);

  stats.request_id = 3;
  stats.tenant = "no-such-tenant";
  ASSERT_TRUE(client.CallControl(stats, &resp).ok());
  EXPECT_EQ(resp.status_code, StatusCode::kNotFound);
}

TEST_F(NetServerTest, GracefulDrainDeliversEveryInFlightResponse) {
  NetClient client;
  ASSERT_TRUE(ConnectClient(&client).ok());

  // Pipeline K estimates, then a control frame as an in-order read
  // barrier: once its response arrives the server has READ (and
  // submitted) all K requests — some may still be mid-walk.
  const size_t k = beta_queries_.size();
  for (size_t i = 0; i < k; ++i) {
    ASSERT_TRUE(
        client.SendEstimate(MakeWire("beta", beta_queries_[i], i + 1))
            .ok());
  }
  WireControlRequest barrier;
  barrier.request_id = 1000;
  barrier.verb = ControlVerb::kList;
  ASSERT_TRUE(client.SendControl(barrier).ok());

  std::thread shutdown;
  size_t estimates_seen = 0;
  bool barrier_seen = false;
  for (;;) {
    Frame frame;
    const Status st = client.ReadFrame(&frame);
    if (!st.ok()) break;  // EOF after the drain flushed everything
    if (frame.type == FrameType::kControlResponse) {
      ASSERT_EQ(frame.control_response.request_id, 1000u);
      barrier_seen = true;
      // Everything is in flight server-side: drain from another thread
      // while this one keeps reading.
      shutdown = std::thread([this] { server_.Shutdown(); });
    } else {
      ASSERT_EQ(frame.type, FrameType::kEstimateResponse);
      EXPECT_EQ(frame.response.status_code, StatusCode::kOk);
      const uint64_t id = frame.response.request_id;
      ASSERT_GE(id, 1u);
      ASSERT_LE(id, k);
      EXPECT_EQ(Bits(frame.response.estimate), Bits(beta_ref_[id - 1]));
      ++estimates_seen;
    }
  }
  if (shutdown.joinable()) shutdown.join();

  EXPECT_TRUE(barrier_seen);
  // The drain contract: every request the server read resolves and its
  // response reaches a client that keeps reading — none dropped.
  EXPECT_EQ(estimates_seen, k);
  const NetServerStats stats = server_.stats();
  EXPECT_EQ(stats.requests_submitted, k);
  EXPECT_EQ(stats.responses_sent, k);
  EXPECT_EQ(stats.orphaned_responses, 0u);
}

// Concurrency regression (sanitizer matrix): Shutdown() racing in-flight
// submissions from several client threads, with NO ordering barrier — the
// shutdown lands while clients are mid-send, which is exactly where a race
// between the I/O thread, the tenant dispatchers' delivery callbacks, and
// the shutdown path would surface under TSan. The invariant is
// conservation, not a fixed count: every request the server READ resolves
// to a response that is either flushed to a still-reading client or
// counted orphaned; clients see a clean EOF, never a hang or a crash.
TEST_F(NetServerTest, ShutdownRacesInFlightSubmits) {
  constexpr size_t kClients = 3;
  std::atomic<size_t> pipelined{0};  // clients whose burst is fully sent
  std::atomic<size_t> responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &pipelined, &responses] {
      NetClient client;
      if (!ConnectClient(&client).ok()) {
        // Shutdown beat the connect — legal in this race, nothing to do.
        pipelined.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (size_t i = 0; i < beta_queries_.size(); ++i) {
        // A send failing mid-burst is the race working as intended (the
        // server stopped reading and closed); keep going to the read side.
        if (!client
                 .SendEstimate(
                     MakeWire("beta", beta_queries_[i], c * 100 + i + 1))
                 .ok()) {
          break;
        }
      }
      pipelined.fetch_add(1, std::memory_order_relaxed);
      for (;;) {
        Frame frame;
        if (!client.ReadFrame(&frame).ok()) break;  // EOF after the drain
        if (frame.type == FrameType::kEstimateResponse) {
          EXPECT_EQ(frame.response.status_code, StatusCode::kOk);
          const uint64_t id = frame.response.request_id;
          EXPECT_EQ(Bits(frame.response.estimate),
                    Bits(beta_ref_[(id % 100) - 1]));
          responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Fire the shutdown as soon as ONE client has its whole burst in the
  // socket: requests are then guaranteed in flight — parsed, queued, or
  // mid-walk — while other clients may still be sending.
  while (pipelined.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  std::thread shutdown([this] { server_.Shutdown(); });
  for (auto& t : clients) t.join();
  shutdown.join();

  const NetServerStats stats = server_.stats();
  // Conservation across the race: everything the server read was
  // submitted, resolved, and its response accounted for — delivered to a
  // reader or counted orphaned, never silently dropped.
  EXPECT_EQ(stats.responses_sent + stats.orphaned_responses,
            stats.requests_submitted);
  // Clients read to EOF, so every flushed response reached one of them.
  EXPECT_EQ(responses.load(std::memory_order_relaxed), stats.responses_sent);
}

TEST_F(NetServerTest, FloodedTenantDoesNotPerturbTheOther) {
  // Solo run: beta's trace alone, recording estimates and the engine
  // counters the run cost (beta's cache is off, so a repeat run does
  // byte-identical work).
  std::shared_ptr<Tenant> beta = registry_.GetTenant("beta");
  ASSERT_NE(beta, nullptr);
  const AsyncEngineStats solo_before = beta->engine->async_stats();
  std::map<uint64_t, WireEstimateResponse> solo;
  {
    NetClient client;
    ASSERT_TRUE(ConnectClient(&client).ok());
    solo = RunTrace(&client, "beta", beta_queries_);
  }
  ASSERT_EQ(solo.size(), beta_queries_.size());
  beta->engine->Drain();
  const AsyncEngineStats solo_after = beta->engine->async_stats();
  const size_t solo_submitted = solo_after.submitted - solo_before.submitted;

  // Flooded run: alpha (max_pending=4, single-threaded, batch size 1) is
  // hammered with distinct low-priority queries from one connection while
  // beta replays the same trace on another.
  std::atomic<size_t> alpha_shed{0};
  std::atomic<size_t> alpha_retry_hints{0};
  std::atomic<bool> flood_ok{true};
  std::thread flooder([&] {
    NetClient client;
    if (!ConnectClient(&client).ok()) {
      flood_ok = false;
      return;
    }
    for (size_t i = 0; i < flood_queries_.size(); ++i) {
      WireEstimateRequest wire = MakeWire("alpha", flood_queries_[i], i + 1);
      wire.priority = RequestPriority::kLow;
      if (!client.SendEstimate(wire).ok()) {
        flood_ok = false;
        return;
      }
    }
    for (size_t i = 0; i < flood_queries_.size(); ++i) {
      Frame frame;
      if (!client.ReadFrame(&frame).ok() ||
          frame.type != FrameType::kEstimateResponse) {
        flood_ok = false;
        return;
      }
      if (frame.response.status_code == StatusCode::kResourceExhausted) {
        ++alpha_shed;
        // Satellite contract: every admission shed carries a positive
        // retry hint across the wire.
        if (frame.response.retry_after_ms > 0) ++alpha_retry_hints;
      }
    }
  });

  std::map<uint64_t, WireEstimateResponse> flooded;
  {
    NetClient client;
    ASSERT_TRUE(ConnectClient(&client).ok());
    flooded = RunTrace(&client, "beta", beta_queries_);
  }
  flooder.join();
  ASSERT_TRUE(flood_ok.load());
  beta->engine->Drain();
  const AsyncEngineStats flood_after = beta->engine->async_stats();

  // The flood really saturated alpha...
  EXPECT_GT(alpha_shed.load(), 0u);
  EXPECT_EQ(alpha_retry_hints.load(), alpha_shed.load());

  // ...and beta never noticed: same responses bit for bit,
  ASSERT_EQ(flooded.size(), beta_queries_.size());
  for (size_t i = 0; i < beta_queries_.size(); ++i) {
    const auto& a = solo.at(i + 1);
    const auto& b = flooded.at(i + 1);
    EXPECT_EQ(a.status_code, StatusCode::kOk);
    EXPECT_EQ(b.status_code, StatusCode::kOk);
    EXPECT_EQ(Bits(a.estimate), Bits(b.estimate))
        << "beta estimate " << i << " perturbed by alpha's flood";
    EXPECT_EQ(Bits(b.estimate), Bits(beta_ref_[i]));
  }
  // ...same engine work, zero sheds of any kind in beta's own stack.
  EXPECT_EQ(flood_after.submitted - solo_after.submitted, solo_submitted);
  EXPECT_EQ(flood_after.shed_admission, 0u);
  EXPECT_EQ(flood_after.expired_victims, 0u);
  EXPECT_EQ(beta->engine->stats().shed_deadline, 0u);
  EXPECT_EQ(beta->engine->stats().shed_midwalk, 0u);
}

}  // namespace
}  // namespace naru
