// Edge-case and failure-injection tests: degenerate tables and domains,
// contradictory queries, dead sample paths, placeholder slots, extreme
// smoothing, serialization failure paths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/enumerator.h"
#include "core/made.h"
#include "core/oracle_model.h"
#include "core/sampler.h"
#include "core/trainer.h"
#include "data/datasets.h"
#include "data/table_stats.h"
#include "estimator/indep.h"
#include "estimator/postgres1d.h"
#include "query/compound.h"
#include "query/executor.h"
#include "query/workload.h"

namespace naru {
namespace {

TEST(EdgeCase, DomainOneColumn) {
  // A constant column: every estimator must treat eq-on-it as sel 1.
  Table t = TableBuilder("t")
                .AddIntColumn("const", {7, 7, 7, 7})
                .AddIntColumn("x", {0, 1, 2, 3})
                .Build();
  EXPECT_EQ(t.column(0).DomainSize(), 1u);
  Predicate p{0, CompareOp::kEq, 0, 0, {}};
  Query q(t, {p});
  EXPECT_DOUBLE_EQ(ExecuteSelectivity(t, q), 1.0);
  IndepEstimator indep(t);
  EXPECT_DOUBLE_EQ(indep.EstimateSelectivity(q), 1.0);
  OracleModel oracle(&t);
  ProgressiveSampler sampler(&oracle, ProgressiveSamplerConfig{});
  EXPECT_NEAR(sampler.EstimateSelectivity(q), 1.0, 1e-9);
}

TEST(EdgeCase, SingleRowTable) {
  Table t = TableBuilder("t").AddIntColumn("a", {5}).Build();
  OracleModel oracle(&t);
  Predicate hit{0, CompareOp::kEq, 0, 0, {}};
  ProgressiveSampler sampler(&oracle, ProgressiveSamplerConfig{});
  EXPECT_NEAR(sampler.EstimateSelectivity(Query(t, {hit})), 1.0, 1e-9);
  EXPECT_NEAR(TableStats::JointEntropyBits(t), 0.0, 1e-12);
}

TEST(EdgeCase, ContradictoryPredicatesGiveEmptyRegion) {
  Table t = MakeRandomTable(100, {10, 10}, 3);
  Predicate ge{0, CompareOp::kGe, 8, 0, {}};
  Predicate le{0, CompareOp::kLe, 2, 0, {}};
  Query q(t, {ge, le});
  EXPECT_TRUE(q.HasEmptyRegion());
  EXPECT_EQ(ExecuteCount(t, q), 0);
  OracleModel oracle(&t);
  EXPECT_DOUBLE_EQ(EnumerateSelectivity(&oracle, q), 0.0);
  ProgressiveSampler sampler(&oracle, ProgressiveSamplerConfig{});
  EXPECT_DOUBLE_EQ(sampler.EstimateSelectivity(q), 0.0);
}

TEST(EdgeCase, DeadPathsFromZeroConditionalMass) {
  // Column 1's value is fully determined by column 0; a query asking for
  // an impossible combination must estimate ~0 without NaN/Inf.
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(i % 4);
    b.push_back(i % 4);  // b == a always
  }
  Table t =
      TableBuilder("t").AddIntColumn("a", a).AddIntColumn("b", b).Build();
  OracleModel oracle(&t);
  Predicate pa{0, CompareOp::kEq, 1, 0, {}};
  Predicate pb{1, CompareOp::kEq, 2, 0, {}};  // impossible given a=1
  Query q(t, {pa, pb});
  ProgressiveSamplerConfig scfg;
  scfg.num_samples = 200;
  ProgressiveSampler sampler(&oracle, scfg);
  const double est = sampler.EstimateSelectivity(q);
  EXPECT_TRUE(std::isfinite(est));
  EXPECT_DOUBLE_EQ(est, 0.0);
}

TEST(EdgeCase, PlaceholderSlotEncodesUnseenValues) {
  std::vector<Value> vals = {Value(int64_t{1}), Value(int64_t{2}),
                             Value(int64_t{3})};
  Dictionary dict = Dictionary::Build(vals, /*with_placeholder=*/true);
  // Placeholder participates in the domain: models size output layers on
  // DomainSize() and can absorb appended unseen data (§4.2).
  EXPECT_EQ(dict.size(), 4u);
  EXPECT_EQ(dict.CodeFor(Value(int64_t{99})).ValueOrDie(), 3);

  Table t1 = TableBuilder("t1").AddIntColumn("a", {1, 2, 3}, true).Build();
  Table t2 = TableBuilder("t2").AddIntColumn("a", {4, 4}).Build();
  ASSERT_TRUE(t1.AppendRows(t2).ok());
  EXPECT_EQ(t1.num_rows(), 5u);
  EXPECT_EQ(t1.column(0).code(3), t1.column(0).dict().placeholder_code());
}

TEST(EdgeCase, OracleFullSmoothingIsUniformProduct) {
  // Explicit table so both columns realize their full domains (4 and 6).
  Table t = TableBuilder("t")
                .AddIntColumn("a", {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3})
                .AddIntColumn("b", {0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5})
                .Build();
  ASSERT_EQ(t.column(1).DomainSize(), 6u);
  OracleModel oracle(&t, /*smoothing_lambda=*/1.0);
  IntMatrix sample(1, 2);
  sample.At(0, 0) = 2;
  Matrix probs;
  oracle.ConditionalDist(sample, 1, &probs);
  for (size_t v = 0; v < 6; ++v) {
    EXPECT_NEAR(probs.At(0, v), 1.0f / 6.0f, 1e-6);
  }
  // Cross entropy equals sum of log2 domain sizes.
  EXPECT_NEAR(oracle.CrossEntropyBits(),
              std::log2(4.0) + std::log2(6.0), 1e-9);
}

TEST(EdgeCase, EnumeratorBatchBoundaries) {
  // Region sizes straddling the batch size must not drop/duplicate points.
  Table t = MakeRandomTable(200, {7, 9}, 7);
  OracleModel oracle(&t);
  Predicate p{0, CompareOp::kLe, 5, 0, {}};
  Query q(t, {p});
  const double truth = ExecuteSelectivity(t, q);
  for (size_t batch : {1, 2, 7, 54, 55, 512}) {
    EXPECT_NEAR(EnumerateSelectivity(&oracle, q, batch), truth, 1e-6)
        << "batch " << batch;
  }
}

TEST(EdgeCase, BinaryEncoderExactPowerOfTwoDomain) {
  // Domain 8 needs exactly 3 bits; domain 9 needs 4.
  EncoderConfig cfg;
  cfg.onehot_threshold = 2;
  cfg.binary_for_large = true;
  Rng rng(1);
  InputEncoder enc({8, 9}, cfg, &rng);
  EXPECT_EQ(enc.width(0), 3u);
  EXPECT_EQ(enc.width(1), 4u);
  // Code 7 encodes as 111.
  IntMatrix codes(1, 2);
  codes.At(0, 0) = 7;
  codes.At(0, 1) = 8;
  Matrix x;
  enc.EncodeBatch(codes, &x);
  EXPECT_FLOAT_EQ(x.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(x.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(x.At(0, 2), 1.0f);
  // 8 = 1000b.
  EXPECT_FLOAT_EQ(x.At(0, 3), 0.0f);
  EXPECT_FLOAT_EQ(x.At(0, 6), 1.0f);
}

TEST(EdgeCase, TrainerOnTinyBatchSizes) {
  Table t = MakeRandomTable(37, {4, 5}, 9);  // rows not divisible by batch
  MadeModel::Config cfg;
  cfg.hidden_sizes = {8};
  cfg.seed = 2;
  MadeModel model({4, 5}, cfg);
  TrainerConfig tcfg;
  tcfg.epochs = 3;
  tcfg.batch_size = 16;  // last batch has 5 rows
  Trainer trainer(&model, tcfg);
  const auto curve = trainer.Train(t);
  ASSERT_EQ(curve.size(), 3u);
  for (double bits : curve) EXPECT_TRUE(std::isfinite(bits));
  EXPECT_LE(curve.back(), curve.front());
}

TEST(EdgeCase, WorkloadOnTableWithFewColumns) {
  // Generator clamps filter counts to the column count.
  Table t = MakeRandomTable(500, {6, 8}, 11);
  WorkloadConfig cfg;
  cfg.num_queries = 30;
  cfg.min_filters = 5;   // > column count
  cfg.max_filters = 11;  // > column count
  cfg.seed = 1;
  const auto queries = GenerateWorkload(t, cfg);
  for (const auto& q : queries) {
    EXPECT_LE(q.predicates().size(), 2u);
    EXPECT_GE(q.predicates().size(), 1u);
  }
}

TEST(EdgeCase, CompoundSingleDisjunctIsPlainEstimate) {
  Table t = MakeRandomTable(400, {9, 9}, 13);
  IndepEstimator est(t);
  Query q(t, {Predicate{0, CompareOp::kLe, 4, 0, {}}});
  EXPECT_DOUBLE_EQ(EstimateDisjunction(&est, {q}),
                   est.EstimateSelectivity(q));
}

TEST(EdgeCase, ModelLoadFromMissingFileFails) {
  MadeModel::Config cfg;
  cfg.hidden_sizes = {8};
  MadeModel model({3, 3}, cfg);
  EXPECT_FALSE(model.Load("/nonexistent/path/model.bin").ok());
}

TEST(EdgeCase, LogProbsAreFiniteAndNegative) {
  Table t = MakeDmvLike(2000, 99);
  MadeModel::Config cfg;
  cfg.hidden_sizes = {32};
  cfg.encoder.embed_dim = 8;
  cfg.seed = 1;
  std::vector<size_t> domains;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    domains.push_back(t.column(c).DomainSize());
  }
  MadeModel model(domains, cfg);
  IntMatrix batch(64, t.num_columns());
  for (size_t r = 0; r < 64; ++r) t.GetRowCodes(r, batch.Row(r));
  std::vector<double> lp;
  model.LogProbRows(batch, &lp);
  for (double v : lp) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(v, 0.0);  // discrete probabilities < 1
  }
}

}  // namespace
}  // namespace naru
